"""The ZGrab2-style scanner: records, failures, rate limiting."""

import pytest

from repro.net import (
    RATE_LIMIT_BYTES_PER_SECOND,
    Scanner,
    SimulatedNetwork,
    TLS12,
    TLS13,
    TLSServerConfig,
    install_tls_server,
)


@pytest.fixture()
def network(hierarchy, leaf):
    net = SimulatedNetwork(seed=9)
    net.add_vantage("us", base_rtt=0.02)
    chain = hierarchy.chain_for(leaf)
    for name in ("a.example", "b.example", "c.example"):
        install_tls_server(net, name, TLSServerConfig(default_chain=chain))
    # A TLS 1.3-only server and a TLS-broken host.
    install_tls_server(
        net, "modern.example",
        TLSServerConfig(default_chain=chain, supported_versions=(TLS13,)),
    )
    net.get_or_add_host("broken.example")  # no TLS handler at all
    return net, chain


class TestScanRecords:
    def test_successful_scan(self, network):
        net, chain = network
        scanner = Scanner(net, "us")
        record = scanner.scan_domain("a.example")
        assert record.success
        assert list(record.chain) == chain
        assert record.tls_version == TLS12
        assert record.wire_bytes > 0
        assert record.error is None

    def test_unreachable_recorded_not_raised(self, network):
        net, _ = network
        record = Scanner(net, "us").scan_domain("ghost.example")
        assert not record.success
        assert record.error == "unreachable"
        assert record.chain == ()

    def test_handshake_failure_recorded(self, network):
        net, _ = network
        record = Scanner(net, "us").scan_domain(
            "modern.example", versions=(TLS12,)
        )
        assert record.error == "handshake_failed"

    def test_broken_server_counts_as_unreachable(self, network):
        net, _ = network
        record = Scanner(net, "us").scan_domain("broken.example")
        assert not record.success

    def test_scan_many(self, network):
        net, _ = network
        records = Scanner(net, "us").scan(
            ["a.example", "b.example", "ghost.example"]
        )
        assert [r.success for r in records] == [True, True, False]
        assert [r.domain for r in records] == [
            "a.example", "b.example", "ghost.example",
        ]


class TestErrorMetrics:
    """Every error counter carries the vantage that observed it."""

    def test_scan_error_labeled_per_vantage(self, network):
        from repro import obs

        net, _ = network
        net.add_vantage("au", base_rtt=0.2)
        with obs.instrumented() as (registry, _):
            Scanner(net, "us").scan_domain("ghost.example")
            Scanner(net, "au").scan_domain("ghost.example")
            Scanner(net, "au").scan_domain("modern.example")
        obs.disable()
        assert registry.value("scan.error", vantage="us",
                              kind="unreachable") == 1
        assert registry.value("scan.error", vantage="au",
                              kind="unreachable") == 1
        assert registry.value("scan.error", vantage="au",
                              kind="handshake_failed") == 1
        # per-scan failures carry the same labels
        assert registry.value("scan.failure", vantage="au",
                              kind="handshake_failed") == 1

    def test_retried_attempts_counted_individually(self, network):
        from repro import obs

        net, _ = network
        net.make_flaky("c.example", 1.0)  # every attempt fails
        with obs.instrumented() as (registry, _):
            Scanner(net, "us", retries=3).scan_domain("c.example")
        obs.disable()
        # four attempts (initial + 3 retries), one failed scan
        assert registry.value("scan.error", vantage="us",
                              kind="unreachable") == 4
        assert registry.value("scan.failure", vantage="us",
                              kind="unreachable") == 1

    def test_attempts_equal_errors_plus_successes(self, network):
        """The registry invariant: scan.attempts counts every handshake
        attempt, so per vantage it must equal scan.error (failed
        attempts, retried ones included) + scan.success."""
        from repro import obs

        net, _ = network
        net.make_flaky("b.example", 0.5)
        with obs.instrumented() as (registry, _):
            scanner = Scanner(net, "us", retries=2)
            scanner.scan(
                ["a.example", "b.example", "ghost.example",
                 "modern.example"] * 5
            )
            attempts = registry.total("scan.attempts")
            errors = registry.total("scan.error")
            successes = registry.total("scan.success")
        obs.disable()
        net.make_flaky("b.example", 0.0)
        assert attempts == errors + successes
        assert attempts > 20  # retries fired: more attempts than scans

    def test_wire_bytes_histogram_labeled_per_vantage(self, network):
        from repro import obs

        net, _ = network
        with obs.instrumented() as (registry, _):
            Scanner(net, "us").scan_domain("a.example")
        obs.disable()
        (series,) = registry.series("scan.wire_bytes")
        assert series.labels == (("vantage", "us"),)


class TestVersionComparison:
    def test_scan_both_versions(self, network):
        net, _ = network
        results = Scanner(net, "us").scan_both_versions(["a.example"])
        tls12, tls13 = results["a.example"]
        assert tls12.tls_version == TLS12
        assert tls13.tls_version == TLS13
        assert tls12.chain == tls13.chain


class TestRateLimit:
    def test_scan_respects_bandwidth_cap(self, network):
        net, _ = network
        rate = 50_000  # tight cap to force waiting
        scanner = Scanner(net, "us", rate_limit=rate)
        scanner.scan(["a.example", "b.example", "c.example"] * 10)
        observed = scanner.bucket.observed_rate()
        # Steady-state rate stays under cap plus the one-burst allowance.
        assert observed <= rate + rate / max(net.clock.now(), 1e-9)

    def test_default_cap_is_500kb(self, network):
        net, _ = network
        scanner = Scanner(net, "us")
        assert scanner.bucket.rate == RATE_LIMIT_BYTES_PER_SECOND


class TestFlakinessAndRetries:
    def test_flaky_host_sometimes_fails_without_retries(self, network):
        net, _ = network
        net.make_flaky("a.example", 0.6)
        scanner = Scanner(net, "us")
        outcomes = [scanner.scan_domain("a.example").success
                    for _ in range(40)]
        assert any(outcomes) and not all(outcomes)
        net.make_flaky("a.example", 0.0)

    def test_retries_recover_transient_failures(self, network):
        net, _ = network
        net.make_flaky("b.example", 0.5)
        patient = Scanner(net, "us", retries=6)
        successes = sum(
            patient.scan_domain("b.example").success for _ in range(25)
        )
        assert successes >= 23  # P(7 straight failures) ~ 0.8%
        net.make_flaky("b.example", 0.0)

    def test_retry_cooldown_advances_clock(self, network):
        net, _ = network
        net.make_flaky("c.example", 1.0)  # always fails -> all retries used
        scanner = Scanner(net, "us", retries=3, retry_cooldown=10.0)
        before = net.clock.now()
        record = scanner.scan_domain("c.example")
        assert not record.success
        assert net.clock.now() - before >= 30.0
        net.make_flaky("c.example", 0.0)

    def test_handshake_failures_not_retried(self, network):
        net, _ = network
        scanner = Scanner(net, "us", retries=5, retry_cooldown=100.0)
        before = net.clock.now()
        record = scanner.scan_domain("modern.example", versions=(TLS12,))
        assert record.error == "handshake_failed"
        assert net.clock.now() - before < 100.0  # no cooldown burned

    def test_scan_both_versions_under_flakiness(self, network):
        # Deterministic seed: with enough retries both version scans
        # recover and the comparison sees the identical chain pair.
        net, _ = network
        net.make_flaky("a.example", 0.4)
        scanner = Scanner(net, "us", retries=8)
        results = scanner.scan_both_versions(["a.example"])
        tls12, tls13 = results["a.example"]
        assert tls12.success and tls13.success
        assert tls12.chain == tls13.chain
        assert tls12.tls_version == TLS12
        assert tls13.tls_version == TLS13
        net.make_flaky("a.example", 0.0)

    def test_negative_retries_rejected(self, network):
        net, _ = network
        import pytest as _pytest

        with _pytest.raises(ValueError):
            Scanner(net, "us", retries=-1)

    def test_flaky_probability_validated(self, network):
        net, _ = network
        import pytest as _pytest

        with _pytest.raises(ValueError):
            net.make_flaky("a.example", 1.5)
