"""Chaos harness: fault injection, retry/backoff, circuit breakers,
and graceful vantage degradation (docs/ROBUSTNESS.md).

The two central guarantees under test:

* **Chaos parity** — a campaign run under a *transient* FaultPlan with
  enough retries produces reports and journal verdict lines
  byte-identical to a fault-free run.
* **Explicit degradation** — a *hard* vantage outage produces a
  campaign explicitly marked ``degraded`` (result flag, journal
  ``degradation`` event, ``collection`` event field) instead of a
  silently smaller union.
"""

import pytest

from repro import obs
from repro.errors import HostUnreachableError
from repro.measurement import Campaign
from repro.net import (
    CircuitBreaker,
    FaultPlan,
    RetryPolicy,
    Scanner,
    SimClock,
    SimulatedNetwork,
    TLSServerConfig,
    Window,
    install_tls_server,
)
from repro.obs import RunJournal, read_journal
from repro.webpki import Ecosystem, EcosystemConfig
from repro.webpki.ecosystem import VANTAGE_AU, VANTAGE_US

#: Small but structurally complete campaign config shared by the
#: end-to-end chaos tests; every run regenerates the identical world.
CONFIG = EcosystemConfig(n_domains=150, seed=23)


def make_campaign(plan=None):
    ecosystem = Ecosystem.generate(CONFIG)
    network = ecosystem.install()
    if plan is not None:
        network.set_fault_plan(plan)
    return ecosystem, Campaign(ecosystem, network=network)


def run_campaign(path, plan=None, **collect_kwargs):
    """Collect + analyse one journaled campaign; return the artefacts."""
    _, campaign = make_campaign(plan)
    with RunJournal.create(path, campaign.manifest()) as journal:
        collection = campaign.collect(journal=journal, **collect_kwargs)
        report, _ = campaign.analyze(
            collection.observations, journal=journal
        )
    verdict_lines = [
        line for line in path.read_text(encoding="utf-8").splitlines()
        if line.startswith('{"type":"verdict"')
    ]
    return collection, report, verdict_lines


def observation_keys(collection):
    return [
        (domain, tuple(c.fingerprint for c in chain))
        for domain, chain in collection.observations
    ]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The fault-free campaign every chaos run is compared against."""
    path = tmp_path_factory.mktemp("chaos") / "baseline.jsonl"
    return run_campaign(path)


class TestChaosParity:
    """Transient plan + retries == fault-free run, byte for byte."""

    def test_reports_and_verdict_lines_byte_identical(
        self, baseline, tmp_path
    ):
        base_collection, base_report, base_verdicts = baseline
        targets = [d.domain for d in Ecosystem.generate(CONFIG)
                   .deployments[:4]]
        plan = (
            FaultPlan(seed=7)
            .fail_next_connects(targets[0], 2)
            .fail_next_connects(targets[1], 3)
            .truncate_next_handshakes(targets[2], 2)
            .truncate_next_handshakes(targets[3], 1)
            .latency_spike(VANTAGE_US, 0.0, 5.0, 4.0)
        )
        collection, report, verdicts = run_campaign(
            tmp_path / "chaos.jsonl", plan,
            retry_policy=RetryPolicy(retries=3, base_delay=0.5),
        )
        assert plan.injected  # the faults actually fired
        assert plan.injected["fail_next"] == 5
        assert plan.injected["truncate_next"] == 3
        assert not collection.degraded
        assert observation_keys(collection) == observation_keys(
            base_collection
        )
        assert report == base_report
        assert verdicts == base_verdicts

    def test_fault_plan_does_not_perturb_latency_stream(self):
        # The plan draws from its own RNG: attaching one (even a
        # heavily-firing probabilistic one) must leave the network's
        # seeded latency sequence untouched.
        def clock_after(plan):
            network = SimulatedNetwork(seed=5, fault_plan=plan)
            network.add_host("a.example").bind(443, lambda p: p)
            network.add_vantage("v")
            for _ in range(20):
                try:
                    network.connect("v", "a.example", 443)
                except HostUnreachableError:
                    pass
            return network.clock.now()

        noisy = FaultPlan(seed=9).flaky_host("a.example", 0.5)
        assert clock_after(None) == clock_after(noisy)


class TestGracefulDegradation:
    def test_hard_outage_marks_vantage_degraded(self, baseline, tmp_path):
        base_collection, _, _ = baseline
        path = tmp_path / "outage.jsonl"
        plan = FaultPlan().vantage_outage(VANTAGE_AU, 0.0)
        collection, _, _ = run_campaign(
            path, plan, breaker_threshold=5,
        )
        assert collection.degraded
        assert collection.degraded_vantages == {VANTAGE_AU: "breaker_open"}
        assert collection.reachable_counts[VANTAGE_AU] == 0
        # The union is exactly what the surviving vantage saw: the us
        # sweep is unaffected, au contributes nothing.
        expected = []
        seen = set()
        for record in base_collection.per_vantage[VANTAGE_US]:
            if not record.success:
                continue
            key = (record.domain,
                   tuple(c.fingerprint for c in record.chain))
            if key not in seen:
                seen.add(key)
                expected.append(key)
        assert observation_keys(collection) == expected

        _, events = read_journal(path)
        (degradation,) = [e for e in events if e["type"] == "degradation"]
        assert degradation["vantage"] == VANTAGE_AU
        assert degradation["reason"] == "breaker_open"
        (summary,) = [e for e in events if e["type"] == "collection"]
        assert summary["degraded"] is True
        assert summary["degraded_vantages"] == {VANTAGE_AU: "breaker_open"}

    def test_zero_success_sweep_degrades_without_breaker(self, tmp_path):
        plan = FaultPlan().vantage_outage(VANTAGE_AU, 0.0)
        collection, _, _ = run_campaign(tmp_path / "nobreaker.jsonl", plan)
        assert collection.degraded_vantages == {
            VANTAGE_AU: "no_successful_scans"
        }

    def test_resumed_collect_does_not_duplicate_degradation(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        plan = FaultPlan().vantage_outage(VANTAGE_AU, 0.0)
        _, campaign = make_campaign(plan)
        with RunJournal.create(path, campaign.manifest()) as journal:
            campaign.collect(journal=journal, breaker_threshold=5)
        with RunJournal.open(path, campaign.manifest()) as journal:
            assert journal.degraded_vantages() == {
                VANTAGE_AU: "breaker_open"
            }
            campaign.collect(journal=journal, breaker_threshold=5)
        _, events = read_journal(path)
        assert len([e for e in events if e["type"] == "degradation"]) == 1
        assert len([e for e in events if e["type"] == "collection"]) == 1


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(SimClock(), "us", threshold=3,
                                 probe_interval=60.0)
        breaker.record(reachable=False)
        breaker.record(reachable=False)
        assert not breaker.tripped
        breaker.record(reachable=False)
        assert breaker.tripped
        assert breaker.trip_count == 1

    def test_contact_resets_the_failure_run(self):
        breaker = CircuitBreaker(SimClock(), "us", threshold=3)
        breaker.record(reachable=False)
        breaker.record(reachable=False)
        breaker.record(reachable=True)  # handshake_failed still = contact
        breaker.record(reachable=False)
        assert not breaker.tripped
        assert breaker.consecutive_failures == 1

    def test_open_breaker_skips_then_probes(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, "us", threshold=2,
                                 probe_interval=60.0)
        breaker.record(reachable=False)
        breaker.record(reachable=False)
        assert not breaker.allow()  # open, probe not due yet
        assert breaker.skipped == 1
        clock.advance(60.0)
        assert breaker.allow()      # half-open probe
        assert not breaker.allow()  # only one probe per interval
        breaker.record(reachable=True)
        assert not breaker.tripped
        assert breaker.allow()

    def test_breaker_metrics(self):
        clock = SimClock()
        with obs.instrumented() as (registry, _):
            breaker = CircuitBreaker(clock, "au", threshold=1,
                                     probe_interval=10.0)
            breaker.record(reachable=False)
            breaker.allow()
            clock.advance(10.0)
            breaker.allow()
            breaker.record(reachable=True)
        obs.disable()
        assert registry.value("breaker.tripped", vantage="au") == 1
        assert registry.value("breaker.skipped", vantage="au") == 1
        assert registry.value("breaker.probes", vantage="au") == 1
        assert registry.value("breaker.closed", vantage="au") == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(SimClock(), "us", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(SimClock(), "us", probe_interval=0.0)


class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(retries=6, base_delay=5.0, multiplier=2.0,
                             max_delay=60.0, jitter=0.0)
        delays = [policy.delay(n, vantage="us", domain="d")
                  for n in range(1, 7)]
        assert delays == [5.0, 10.0, 20.0, 40.0, 60.0, 60.0]

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=3, base_delay=10.0, multiplier=1.0,
                             jitter=0.25)
        first = policy.delay(1, vantage="us", domain="a.example")
        again = policy.delay(1, vantage="us", domain="a.example")
        assert first == again  # derived from (vantage, domain, attempt)
        assert 10.0 <= first < 12.5
        other = policy.delay(1, vantage="au", domain="a.example")
        assert other != first

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(scan_budget=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(retries=1).delay(0, vantage="us", domain="d")

    def test_scan_budget_abandons_remaining_retries(self):
        network = SimulatedNetwork()
        network.add_vantage("us")
        policy = RetryPolicy(retries=5, base_delay=10.0, multiplier=1.0,
                             jitter=0.0, scan_budget=25.0)
        with obs.instrumented() as (registry, _):
            scanner = Scanner(network, "us", retry_policy=policy)
            record = scanner.scan_domain("ghost.example")
        obs.disable()
        assert not record.success
        # attempts 1..3 fit; the third backoff would blow the budget
        assert record.attempts == 3
        assert network.clock.now() == pytest.approx(20.0)
        assert registry.value("scan.retry.budget_exhausted",
                              vantage="us") == 1
        assert registry.value("scan.retry.attempts", vantage="us") == 2


class TestFaultPlanUnits:
    def test_window_semantics(self):
        window = Window(2.0, 5.0)
        assert not window.covers(1.9)
        assert window.covers(2.0)
        assert window.covers(4.999)
        assert not window.covers(5.0)  # half-open
        assert Window(1.0).covers(1e12)  # open-ended
        with pytest.raises(ValueError):
            Window(5.0, 2.0)

    def test_scripting_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.flaky_host("h", 1.5)
        with pytest.raises(ValueError):
            plan.fail_next_connects("h", -1)
        with pytest.raises(ValueError):
            plan.latency_spike("v", 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            plan.fail_next_aia_fetches(-2)

    def test_fail_next_connects_recovers(self):
        network = SimulatedNetwork(
            fault_plan=FaultPlan().fail_next_connects("a.example", 2)
        )
        network.add_host("a.example").bind(443, lambda p: p)
        network.add_vantage("v")
        for _ in range(2):
            with pytest.raises(HostUnreachableError, match="injected"):
                network.connect("v", "a.example", 443)
        assert network.connect("v", "a.example", 443)
        assert network.fault_plan.injected["fail_next"] == 2

    def test_latency_spike_scales_rtt_inside_window(self):
        def elapsed(plan):
            network = SimulatedNetwork(seed=4, fault_plan=plan)
            network.add_host("a.example").bind(443, lambda p: p)
            network.add_vantage("v", base_rtt=0.1)
            network.connect("v", "a.example", 443)
            return network.clock.now()

        plain = elapsed(None)
        spiked = elapsed(FaultPlan().latency_spike("v", 0.0, 10.0, 5.0))
        assert spiked == pytest.approx(5.0 * plain)
        past = elapsed(FaultPlan().latency_spike("v", 50.0, 60.0, 5.0))
        assert past == pytest.approx(plain)

    def test_vantage_outage_window_opens_and_closes(self):
        plan = FaultPlan().vantage_outage("v", 0.0, 1.0)
        network = SimulatedNetwork(fault_plan=plan)
        network.add_host("a.example").bind(443, lambda p: p)
        network.add_vantage("v", base_rtt=0.01)
        with pytest.raises(HostUnreachableError, match="vantage_outage"):
            network.connect("v", "a.example", 443)
        network.clock.advance(2.0)
        assert network.connect("v", "a.example", 443)

    def test_truncated_handshake_scans_as_reset(self, hierarchy, leaf):
        plan = FaultPlan().truncate_next_handshakes("a.example", 1)
        network = SimulatedNetwork(seed=9, fault_plan=plan)
        network.add_vantage("us", base_rtt=0.02)
        install_tls_server(
            network, "a.example",
            TLSServerConfig(default_chain=hierarchy.chain_for(leaf)),
        )
        record = Scanner(network, "us").scan_domain("a.example")
        assert not record.success
        assert record.error == "reset"
        # one retry later the deterministic truncation is spent
        record = Scanner(network, "us",
                         retry_policy=RetryPolicy(retries=1, base_delay=0.1)
                         ).scan_domain("a.example")
        assert record.success

    def test_aia_brownout_window_needs_the_clock(self, hierarchy):
        from repro.trust import StaticAIARepository

        repo = StaticAIARepository()
        repo.publish(hierarchy.root.aia_uri, hierarchy.root.certificate)
        clock = SimClock()
        plan = FaultPlan().aia_brownout(0.0, 10.0)

        repo.inject_faults(plan)  # no clock: windows never fire
        assert repo.fetch(hierarchy.root.aia_uri)

        repo.inject_faults(plan, clock)
        from repro.errors import AIAFetchError

        with pytest.raises(AIAFetchError) as excinfo:
            repo.fetch(hierarchy.root.aia_uri)
        assert excinfo.value.reason == "unreachable"
        clock.advance(10.0)
        assert repo.fetch(hierarchy.root.aia_uri)
        assert plan.injected["aia_brownout"] == 1


class TestChaosMetricsInvariant:
    def test_attempts_equal_errors_plus_successes_under_chaos(self):
        targets = [d.domain for d in Ecosystem.generate(CONFIG)
                   .deployments[:6]]
        plan = FaultPlan(seed=3)
        for domain in targets:
            plan.flaky_host(domain, 0.5)
        with obs.instrumented() as (registry, _):
            _, campaign = make_campaign(plan)
            campaign.collect(
                retry_policy=RetryPolicy(retries=2, base_delay=0.2),
                breaker_threshold=10,
            )
            attempts = registry.total("scan.attempts")
            errors = registry.total("scan.error")
            successes = registry.total("scan.success")
            retries = registry.total("scan.retry.attempts")
        obs.disable()
        assert retries > 0  # chaos actually exercised the retry path
        assert attempts == errors + successes
