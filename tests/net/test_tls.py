"""The miniature TLS handshake layer."""

import pytest

from repro.errors import TLSHandshakeError
from repro.net import (
    CertificateMessage,
    ClientHello,
    SimulatedNetwork,
    TLS12,
    TLS13,
    TLSServer,
    TLSServerConfig,
    install_tls_server,
    perform_handshake,
)


@pytest.fixture(scope="module")
def network(hierarchy, leaf):
    net = SimulatedNetwork(seed=5)
    net.add_vantage("v")
    chain = hierarchy.chain_for(leaf)
    install_tls_server(net, "tls.example", TLSServerConfig(default_chain=chain))
    return net, chain


class TestCertificateMessage:
    def test_roundtrip(self, chain):
        message = CertificateMessage.from_chain(list(chain))
        assert message.certificates() == list(chain)
        assert message.size > 0


class TestServer:
    def test_version_negotiation_prefers_client_order(self, chain):
        server = TLSServer(TLSServerConfig(default_chain=list(chain)))
        flight = server(ClientHello("x", versions=(TLS13, TLS12)))
        assert flight.hello.version == TLS13
        flight = server(ClientHello("x", versions=(TLS12,)))
        assert flight.hello.version == TLS12

    def test_no_common_version(self, chain):
        server = TLSServer(TLSServerConfig(
            default_chain=list(chain), supported_versions=(TLS12,)
        ))
        with pytest.raises(TLSHandshakeError):
            server(ClientHello("x", versions=(TLS13,)))

    def test_no_certificate_configured(self):
        server = TLSServer(TLSServerConfig())
        with pytest.raises(TLSHandshakeError):
            server(ClientHello("x"))

    def test_bad_payload_rejected(self, chain):
        server = TLSServer(TLSServerConfig(default_chain=list(chain)))
        with pytest.raises(TLSHandshakeError):
            server("GET / HTTP/1.1")

    def test_per_version_chains(self, chain):
        shorter = list(chain[:1])
        server = TLSServer(TLSServerConfig(
            default_chain=list(chain), chains={TLS13: shorter}
        ))
        assert len(server(ClientHello("x", versions=(TLS13,)))
                   .certificate.certificates()) == 1
        assert len(server(ClientHello("x", versions=(TLS12,)))
                   .certificate.certificates()) == len(chain)

    def test_handshake_counter(self, chain):
        server = TLSServer(TLSServerConfig(default_chain=list(chain)))
        server(ClientHello("x"))
        server(ClientHello("x"))
        assert server.handshakes == 2


class TestClientHandshake:
    def test_handshake_returns_served_chain(self, network):
        net, chain = network
        result = perform_handshake(net, "v", "tls.example")
        assert list(result.chain) == chain
        assert result.version == TLS13
        assert result.wire_bytes > len(chain) * 100

    def test_handshake_with_tls12_only(self, network):
        net, _ = network
        result = perform_handshake(net, "v", "tls.example", versions=(TLS12,))
        assert result.version == TLS12

    def test_unreachable_host_raises(self, network):
        net, _ = network
        from repro.errors import HostUnreachableError

        with pytest.raises(HostUnreachableError):
            perform_handshake(net, "v", "nothere.example")
