"""Token bucket rate limiting over simulated time."""

import pytest

from repro.net import SimClock, TokenBucket


class TestValidation:
    def test_positive_parameters_required(self):
        with pytest.raises(ValueError):
            TokenBucket(SimClock(), rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(SimClock(), rate=1, burst=0)

    def test_negative_consume_rejected(self):
        bucket = TokenBucket(SimClock(), rate=10, burst=10)
        with pytest.raises(ValueError):
            bucket.consume(-1)


class TestBehaviour:
    def test_burst_consumed_without_waiting(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=100, burst=100)
        waited = bucket.consume(100)
        assert waited == 0
        assert clock.now() == 0

    def test_exhausted_bucket_waits(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=100, burst=100)
        bucket.consume(100)
        waited = bucket.consume(50)
        assert waited == pytest.approx(0.5)
        assert clock.now() == pytest.approx(0.5)

    def test_refill_over_time(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=10, burst=10)
        bucket.consume(10)
        clock.advance(1.0)  # refills 10 tokens
        assert bucket.consume(10) == 0

    def test_oversized_request_honoured_by_waiting(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=10, burst=5)
        waited = bucket.consume(25)
        assert waited > 0
        assert clock.now() >= 2.0  # at least (25-5)/10 seconds

    def test_observed_rate_bounded_by_configured_rate(self):
        clock = SimClock()
        rate = 500 * 1024
        bucket = TokenBucket(clock, rate=rate, burst=rate)
        for _ in range(50):
            bucket.consume(100_000)
        # Allow the initial burst allowance on top of the steady rate.
        assert bucket.observed_rate() <= rate + rate / clock.now()

    def test_observed_rate_measured_from_creation_not_epoch(self):
        # Regression: a bucket created after the clock has run (the
        # second vantage's scanner, mid-campaign) used to divide by
        # clock.now() — the whole campaign's runtime — and so
        # under-report its own rate by orders of magnitude.
        clock = SimClock()
        clock.advance(100.0)  # a long first-vantage sweep already happened
        bucket = TokenBucket(clock, rate=10, burst=10)
        bucket.consume(10)
        clock.advance(1.0)
        assert bucket.observed_rate() == pytest.approx(10.0)

    def test_observed_rate_zero_before_time_passes(self):
        clock = SimClock()
        clock.advance(50.0)
        bucket = TokenBucket(clock, rate=10, burst=10)
        bucket.consume(5)  # within burst: no waiting, no elapsed time
        assert bucket.observed_rate() == 0.0

    def test_counters(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=10, burst=10)
        bucket.consume(4)
        bucket.consume(8)
        assert bucket.total_consumed == pytest.approx(12)
        assert bucket.total_wait > 0
