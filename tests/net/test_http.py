"""Simulated HTTP and the HTTP-backed AIA fetcher."""

import pytest

from repro.errors import AIAFetchError, HTTPError
from repro.net import (
    HTTPAIAFetcher,
    SimulatedNetwork,
    http_get,
    install_http_server,
    publish_certificate,
)


@pytest.fixture()
def network(hierarchy):
    net = SimulatedNetwork(seed=3)
    net.add_vantage("v")
    server = install_http_server(net, "aia.http.example")
    publish_certificate(server, "/root.crt", hierarchy.root.certificate)
    server.put("/hello.txt", b"hello")
    return net, server


class TestHTTP:
    def test_get_success(self, network):
        net, _ = network
        assert http_get(net, "v", "http://aia.http.example/hello.txt") == b"hello"

    def test_get_404(self, network):
        net, _ = network
        with pytest.raises(HTTPError) as excinfo:
            http_get(net, "v", "http://aia.http.example/missing")
        assert excinfo.value.status == 404

    def test_non_http_scheme_rejected(self, network):
        net, _ = network
        with pytest.raises(HTTPError):
            http_get(net, "v", "ftp://aia.http.example/x")

    def test_request_counter(self, network):
        net, server = network
        http_get(net, "v", "http://aia.http.example/hello.txt")
        assert server.requests == 1

    def test_non_get_rejected(self, network):
        from repro.net import HTTPRequest

        _net, server = network
        response = server(HTTPRequest("POST", "/hello.txt"))
        assert response.status == 405


class TestHTTPAIAFetcher:
    def test_fetch_certificate(self, network, hierarchy):
        net, _ = network
        fetcher = HTTPAIAFetcher(net, "v")
        cert = fetcher.fetch("http://aia.http.example/root.crt")
        assert cert == hierarchy.root.certificate
        assert fetcher.fetches == 1

    def test_fetch_404_maps_to_not_found(self, network):
        net, _ = network
        fetcher = HTTPAIAFetcher(net, "v")
        with pytest.raises(AIAFetchError) as excinfo:
            fetcher.fetch("http://aia.http.example/none.crt")
        assert excinfo.value.reason == "not_found"

    def test_fetch_unreachable_host(self, network):
        net, _ = network
        fetcher = HTTPAIAFetcher(net, "v")
        with pytest.raises(AIAFetchError) as excinfo:
            fetcher.fetch("http://gone.example/root.crt")
        assert excinfo.value.reason == "unreachable"

    def test_non_certificate_body_is_wrong_certificate(self, network):
        net, _ = network
        fetcher = HTTPAIAFetcher(net, "v")
        with pytest.raises(AIAFetchError) as excinfo:
            fetcher.fetch("http://aia.http.example/hello.txt")
        assert excinfo.value.reason == "wrong_certificate"
