"""The network simulator: hosts, vantages, reachability, clock."""

import pytest

from repro.errors import HostUnreachableError, NetworkError
from repro.net import SimClock, SimulatedNetwork


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now() == pytest.approx(1.5)

    def test_time_cannot_reverse(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)


class TestTopology:
    def test_add_host_and_bind(self):
        network = SimulatedNetwork()
        host = network.add_host("a.example")
        host.bind(443, lambda payload: ("echo", payload))
        network.add_vantage("v")
        connection = network.connect("v", "a.example", 443)
        assert connection.request("hi") == ("echo", "hi")

    def test_duplicate_host_rejected(self):
        network = SimulatedNetwork()
        network.add_host("a.example")
        with pytest.raises(NetworkError):
            network.add_host("a.example")

    def test_get_or_add_host_idempotent(self):
        network = SimulatedNetwork()
        first = network.get_or_add_host("b.example")
        assert network.get_or_add_host("b.example") is first

    def test_duplicate_port_bind_rejected(self):
        network = SimulatedNetwork()
        host = network.add_host("a.example")
        host.bind(80, lambda p: p)
        with pytest.raises(NetworkError):
            host.bind(80, lambda p: p)

    def test_unbound_port_refuses(self):
        network = SimulatedNetwork()
        network.add_host("a.example")
        network.add_vantage("v")
        connection = network.connect("v", "a.example", 9999)
        with pytest.raises(NetworkError):
            connection.request("x")

    def test_vantage_reregistration_same_rtt_idempotent(self):
        network = SimulatedNetwork()
        network.add_vantage("v", base_rtt=0.1)
        network.add_vantage("v", base_rtt=0.1)  # no-op, not an error

    def test_vantage_reregistration_may_not_change_rtt(self):
        # Silently overwriting base_rtt would desynchronise every
        # latency draw after the second registration; refuse instead.
        network = SimulatedNetwork()
        network.add_vantage("v", base_rtt=0.1)
        with pytest.raises(NetworkError):
            network.add_vantage("v", base_rtt=0.2)


class TestReachability:
    def test_unknown_vantage_rejected(self):
        network = SimulatedNetwork()
        network.add_host("a.example")
        with pytest.raises(NetworkError):
            network.connect("nowhere", "a.example", 443)

    def test_unknown_host_unreachable(self):
        network = SimulatedNetwork()
        network.add_vantage("v")
        with pytest.raises(HostUnreachableError):
            network.connect("v", "ghost.example", 443)

    def test_per_vantage_block(self):
        network = SimulatedNetwork()
        network.add_host("a.example").bind(443, lambda p: p)
        network.add_vantage("us")
        network.add_vantage("au")
        network.block("au", "a.example")
        assert network.is_reachable("us", "a.example")
        assert not network.is_reachable("au", "a.example")
        with pytest.raises(HostUnreachableError):
            network.connect("au", "a.example", 443)


class TestLatency:
    def test_connect_advances_clock(self):
        network = SimulatedNetwork(seed=1)
        network.add_host("a.example").bind(443, lambda p: p)
        network.add_vantage("v", base_rtt=0.1)
        before = network.clock.now()
        network.connect("v", "a.example", 443)
        assert network.clock.now() > before

    def test_seeded_latency_reproducible(self):
        def total_time(seed):
            network = SimulatedNetwork(seed=seed)
            network.add_host("a.example").bind(443, lambda p: p)
            network.add_vantage("v")
            for _ in range(10):
                network.connect("v", "a.example", 443)
            return network.clock.now()

        assert total_time(7) == total_time(7)
        assert total_time(7) != total_time(8)


class TestFlakiness:
    def test_flaky_connect_raises_after_clock_advance(self):
        # A transient failure still costs the round trip: the clock
        # must advance by the RTT *before* the flaky check raises, or
        # retry timing accounting would be free of charge.
        network = SimulatedNetwork(seed=3)
        network.add_host("a.example").bind(443, lambda p: p)
        network.add_vantage("v", base_rtt=0.1)
        network.make_flaky("a.example", 1.0)
        before = network.clock.now()
        with pytest.raises(HostUnreachableError):
            network.connect("v", "a.example", 443)
        assert network.clock.now() - before >= 0.08  # >= 0.1 * 0.8

    def test_flaky_outcomes_deterministic_per_seed(self):
        def outcomes(seed):
            network = SimulatedNetwork(seed=seed)
            network.add_host("a.example").bind(443, lambda p: p)
            network.add_vantage("v")
            network.make_flaky("a.example", 0.5)
            results = []
            for _ in range(30):
                try:
                    network.connect("v", "a.example", 443)
                    results.append(True)
                except HostUnreachableError:
                    results.append(False)
            return results

        assert outcomes(11) == outcomes(11)
        assert any(outcomes(11)) and not all(outcomes(11))
