"""AIA repository and recursive completion."""

import pytest

from repro.ca import build_hierarchy
from repro.errors import AIAFetchError
from repro.trust import (
    MAX_AIA_DEPTH,
    RetryingAIAFetcher,
    StaticAIARepository,
    complete_via_aia,
)


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy(
        "AIAT", depth=2, key_seed_prefix="aiat",
        aia_base="http://aia.aiat.example",
    )
    repo = StaticAIARepository()
    for authority in h.authorities:
        repo.publish(authority.aia_uri, authority.certificate)
    leaf = h.issue_leaf("aiat.example")
    return h, leaf, repo


class TestRepository:
    def test_fetch_published(self, world):
        h, _leaf, repo = world
        uri = h.root.aia_uri
        assert repo.fetch(uri) == h.root.certificate
        assert repo.stats.successes >= 1

    def test_fetch_unknown_uri(self, world):
        _h, _leaf, repo = world
        with pytest.raises(AIAFetchError) as excinfo:
            repo.fetch("http://aia.aiat.example/nothing.crt")
        assert excinfo.value.reason == "not_found"

    def test_unreachable_uri(self, world):
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        repo.publish("http://x/y.crt", h.root.certificate)
        repo.mark_unreachable("http://x/y.crt")
        with pytest.raises(AIAFetchError) as excinfo:
            repo.fetch("http://x/y.crt")
        assert excinfo.value.reason == "unreachable"
        assert repo.stats.failures == 1

    def test_republish_clears_unreachable(self, world):
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        repo.mark_unreachable("http://x/z.crt")
        repo.publish("http://x/z.crt", h.root.certificate)
        assert repo.fetch("http://x/z.crt") == h.root.certificate

    def test_len_and_items(self, world):
        _h, _leaf, repo = world
        assert len(repo) == len(repo.items()) == 3


class TestCompletion:
    def test_leaf_completes_to_root(self, world):
        _h, leaf, repo = world
        result = complete_via_aia(leaf, repo)
        assert result.completed
        assert len(result.fetched) == 3  # issuing, upper, root
        assert result.fetched[-1].is_self_signed

    def test_self_signed_input_completes_without_fetches(self, world):
        h, _leaf, repo = world
        result = complete_via_aia(h.root.certificate, repo)
        assert result.completed
        assert result.fetched == ()

    def test_missing_aia_field(self, world):
        h, _leaf, repo = world
        bare = h.issuing_ca.issue_leaf("noaia.example", include_aia=False)
        assert complete_via_aia(bare, repo).outcome == "missing_aia"

    def test_unreachable_outcome(self, world):
        # A dead *server*: the URI is known but marked unreachable.
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        leaf = h.issuing_ca.issue_leaf("dead.example")
        for uri in leaf.aia_ca_issuer_uris:
            repo.mark_unreachable(uri)
        assert complete_via_aia(leaf, repo).outcome == "unreachable"

    def test_not_found_outcome(self, world):
        # A live server with nothing at the path: previously this was
        # misreported as "unreachable" (both arms of the conditional
        # returned the same string); it must be the distinct class.
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        leaf = h.issuing_ca.issue_leaf("missingpath.example")
        assert complete_via_aia(leaf, repo).outcome == "not_found"

    def test_wrong_certificate_outcome(self, world):
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        uri = "http://aia.aiat.example/self.crt"
        leaf = h.issuing_ca.issue_leaf("selfref.example", aia_uri=uri)
        repo.publish_wrong(uri, leaf)  # the URI serves the cert itself
        assert complete_via_aia(leaf, repo).outcome == "wrong_certificate"

    def test_non_issuer_at_uri_is_wrong_certificate(self, world):
        h, _leaf, _repo = world
        other = build_hierarchy("AIAO", depth=0, key_seed_prefix="aiao")
        repo = StaticAIARepository()
        uri = "http://aia.aiat.example/mismatch.crt"
        leaf = h.issuing_ca.issue_leaf("mismatch.example", aia_uri=uri)
        repo.publish(uri, other.root.certificate)
        assert complete_via_aia(leaf, repo).outcome == "wrong_certificate"

    def test_transient_failure_recovers_with_retries(self, world):
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        for authority in h.authorities:
            repo.publish(authority.aia_uri, authority.certificate)
        leaf = h.issuing_ca.issue_leaf("brownout.example")
        repo.fail_transiently(h.issuing_ca.aia_uri, 2)
        assert complete_via_aia(leaf, repo).outcome == "unreachable"
        repo.fail_transiently(h.issuing_ca.aia_uri, 2)
        assert complete_via_aia(leaf, repo, retries=2).completed

    def test_retries_exhausted_stays_unreachable(self, world):
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        for authority in h.authorities:
            repo.publish(authority.aia_uri, authority.certificate)
        leaf = h.issuing_ca.issue_leaf("longout.example")
        repo.fail_transiently(h.issuing_ca.aia_uri, 10)
        assert complete_via_aia(leaf, repo, retries=2).outcome == (
            "unreachable"
        )

    def test_not_found_is_not_retried(self, world):
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        leaf = h.issuing_ca.issue_leaf("noretry.example")
        result = complete_via_aia(leaf, repo, retries=5)
        assert result.outcome == "not_found"
        # definitive answer: exactly one fetch per URI, no retries spent
        assert repo.stats.attempts == len(leaf.aia_ca_issuer_uris)

    def test_depth_limit(self):
        # A ladder deeper than MAX_AIA_DEPTH must stop with the guard
        # outcome instead of recursing indefinitely.
        repo = StaticAIARepository()
        deep = build_hierarchy(
            "AIADeep", depth=MAX_AIA_DEPTH + 2, key_seed_prefix="aiadeep",
            aia_base="http://aia.deep.example",
        )
        for authority in deep.authorities:
            repo.publish(authority.aia_uri, authority.certificate)
        leaf = deep.issue_leaf("deep.example")
        assert complete_via_aia(leaf, repo).outcome == "depth_exceeded"

    def test_custom_depth_budget(self, world):
        _h, leaf, repo = world
        assert complete_via_aia(leaf, repo, max_depth=2).outcome == (
            "depth_exceeded"
        )
        assert complete_via_aia(leaf, repo, max_depth=4).completed


class TestRetryingFetcher:
    def test_retries_transparent_on_success(self, world):
        h, _leaf, repo = world
        fetcher = RetryingAIAFetcher(repo, retries=3)
        assert fetcher.fetch(h.root.aia_uri) == h.root.certificate

    def test_transient_then_success(self, world):
        h, _leaf, _repo = world
        repo = StaticAIARepository()
        repo.publish(h.root.aia_uri, h.root.certificate)
        repo.fail_transiently(h.root.aia_uri, 2)
        fetcher = RetryingAIAFetcher(repo, retries=2)
        assert fetcher.fetch(h.root.aia_uri) == h.root.certificate
        assert repo.stats.attempts == 3

    def test_definitive_failure_passes_through(self, world):
        _h, _leaf, _repo = world
        repo = StaticAIARepository()
        fetcher = RetryingAIAFetcher(repo, retries=4)
        with pytest.raises(AIAFetchError) as excinfo:
            fetcher.fetch("http://x/gone.crt")
        assert excinfo.value.reason == "not_found"
        assert repo.stats.attempts == 1

    def test_negative_retries_rejected(self, world):
        _h, _leaf, repo = world
        with pytest.raises(ValueError):
            RetryingAIAFetcher(repo, retries=-1)
