"""Root stores and the four-program registry."""

import pytest

from repro.ca import build_hierarchy
from repro.errors import RootStoreError
from repro.trust import RootStore, RootStoreRegistry, STORE_NAMES


@pytest.fixture(scope="module")
def world():
    a = build_hierarchy("StoreA", depth=1, key_seed_prefix="storea")
    b = build_hierarchy("StoreB", depth=1, key_seed_prefix="storeb")
    return a, b


class TestRootStore:
    def test_add_and_contains(self, world):
        a, _ = world
        store = RootStore("t", [a.root.certificate])
        assert a.root.certificate in store
        assert len(store) == 1

    def test_duplicate_anchor_rejected(self, world):
        a, _ = world
        store = RootStore("t", [a.root.certificate])
        with pytest.raises(RootStoreError):
            store.add(a.root.certificate)

    def test_find_by_skid(self, world):
        a, _ = world
        root = a.root.certificate
        store = RootStore("t", [root])
        assert store.find_by_skid(root.subject_key_id) == [root]
        assert store.find_by_skid(b"\x00" * 20) == []

    def test_find_by_subject(self, world):
        a, _ = world
        root = a.root.certificate
        store = RootStore("t", [root])
        assert store.find_by_subject(root.subject) == [root]

    def test_find_issuers_of_via_akid(self, world):
        a, _ = world
        store = RootStore("t", [a.root.certificate])
        intermediate = a.intermediates[0].certificate
        assert store.find_issuers_of(intermediate) == [a.root.certificate]

    def test_find_issuers_of_via_dn_when_akid_absent(self, world):
        a, _ = world
        store = RootStore("t", [a.root.certificate])
        from repro.x509 import Name

        child = a.root.issue_intermediate(
            Name.build(common_name="No AKID Int"), include_akid=False
        )
        assert store.find_issuers_of(child.certificate) == [a.root.certificate]

    def test_find_issuers_dn_fallback_requires_signature(self, world):
        a, b = world
        store = RootStore("t", [a.root.certificate])
        # Same-DN trick: a cert *claiming* A's root as issuer but signed
        # by B's key must not match the anchor.
        from repro.ca import next_serial
        from repro.x509 import (
            CertificateBuilder, Name, SimulatedKeyPair, Validity, utc,
        )

        key = SimulatedKeyPair(seed=b"store/impostor")
        impostor = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="Impostor"))
            .issuer_name(a.root.certificate.subject)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2026, 1, 1)))
            .public_key(key.public_key)
            .ca()
            .sign(b.root.keypair)
        )
        assert store.find_issuers_of(impostor) == []

    def test_contains_key_of_matches_by_key(self, world):
        a, _ = world
        store = RootStore("t", [a.root.certificate])
        # A re-issued variant with the same key counts as anchored.
        from repro.ca import next_serial
        from repro.x509 import CertificateBuilder, Name, Validity, utc

        variant = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="Rebranded Root"))
            .issuer_name(Name.build(common_name="Rebranded Root"))
            .serial_number(next_serial())
            .validity(Validity(utc(2020, 1, 1), utc(2030, 1, 1)))
            .public_key(a.root.keypair.public_key)
            .ca()
            .sign(a.root.keypair)
        )
        assert store.contains_key_of(variant)
        assert variant not in store

    def test_union_merges_without_duplicates(self, world):
        a, b = world
        store_a = RootStore("a", [a.root.certificate])
        store_b = RootStore("b", [a.root.certificate, b.root.certificate])
        union = store_a.union(store_b)
        assert len(union) == 2
        assert union.name == "union"

    def test_iteration(self, world):
        a, b = world
        store = RootStore("t", [a.root.certificate, b.root.certificate])
        assert len(list(store)) == 2


class TestContainsKeyOfScaling:
    """``contains_key_of`` is indexed: cost must not grow with the store."""

    @staticmethod
    def build_store(size: int) -> RootStore:
        from repro.ca import next_serial
        from repro.x509 import (
            CertificateBuilder, Name, SimulatedKeyPair, Validity, utc,
        )

        store = RootStore(f"bench-{size}")
        for index in range(size):
            keypair = SimulatedKeyPair(seed=f"bench/{size}/{index}".encode())
            name = Name.build(common_name=f"Bench Root {size}-{index}")
            store.add(
                CertificateBuilder()
                .subject_name(name)
                .issuer_name(name)
                .serial_number(next_serial())
                .validity(Validity(utc(2020, 1, 1), utc(2030, 1, 1)))
                .public_key(keypair.public_key)
                .ca()
                .sign(keypair)
            )
        return store

    @staticmethod
    def probe_time(store: RootStore, probes, rounds: int = 5) -> float:
        import time

        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for cert in probes:
                store.contains_key_of(cert)
            best = min(best, time.perf_counter() - start)
        return best

    def test_lookup_does_not_scale_with_store_size(self):
        small = self.build_store(40)
        large = self.build_store(1000)
        # probe with certificates absent from both stores, the worst
        # case for a linear scan (no early exit)
        probes = [anchor for anchor in self.build_store(50)] * 40
        small_time = self.probe_time(small, probes)
        large_time = self.probe_time(large, probes)
        # a linear scan would be ~25x slower on the large store; the
        # indexed lookup is flat (generous 5x bound absorbs timer noise)
        assert large_time < small_time * 5, (
            f"contains_key_of scaled with store size: "
            f"{small_time:.6f}s @40 anchors vs {large_time:.6f}s @1000"
        )

    def test_index_agrees_with_a_full_scan(self):
        store = self.build_store(60)
        anchors = list(store)
        for cert in anchors[:10] + [a for a in self.build_store(10)]:
            scanned = any(
                anchor.public_key == cert.public_key for anchor in anchors
            )
            assert store.contains_key_of(cert) == scanned


class TestRegistry:
    def test_four_programs(self):
        registry = RootStoreRegistry()
        assert set(registry.stores) == set(STORE_NAMES)

    def test_unknown_store_rejected(self):
        with pytest.raises(RootStoreError):
            RootStoreRegistry().store("netscape")

    def test_membership_tracks_programs(self, world):
        a, _ = world
        registry = RootStoreRegistry()
        registry.add_to(a.root.certificate, ("mozilla", "apple"))
        assert registry.membership(a.root.certificate) == {"mozilla", "apple"}

    def test_add_everywhere(self, world):
        _, b = world
        registry = RootStoreRegistry()
        registry.add_everywhere(b.root.certificate)
        assert registry.membership(b.root.certificate) == set(STORE_NAMES)

    def test_union_covers_all_programs(self, world):
        a, b = world
        registry = RootStoreRegistry()
        registry.add_to(a.root.certificate, ("mozilla",))
        registry.add_to(b.root.certificate, ("apple",))
        union = registry.union()
        assert a.root.certificate in union
        assert b.root.certificate in union
