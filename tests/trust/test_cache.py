"""The Firefox-style intermediate cache."""

import pytest

from repro.ca import build_hierarchy
from repro.trust import IntermediateCache


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("CacheT", depth=2, key_seed_prefix="cachet")
    leaf = h.issue_leaf("cachet.example")
    return h, leaf


class TestObservation:
    def test_only_ca_certificates_cached(self, world):
        h, leaf = world
        cache = IntermediateCache()
        assert not cache.observe(leaf)
        assert cache.observe(h.intermediates[0].certificate)
        assert len(cache) == 1

    def test_observe_chain_counts(self, world):
        h, leaf = world
        cache = IntermediateCache()
        cached = cache.observe_chain(h.chain_for(leaf, include_root=True))
        assert cached == 3  # two intermediates + root
        assert leaf not in cache

    def test_reobservation_is_idempotent(self, world):
        h, _leaf = world
        cache = IntermediateCache()
        cert = h.intermediates[0].certificate
        cache.observe(cert)
        cache.observe(cert)
        assert len(cache) == 1


class TestLookup:
    def test_find_issuers_hits(self, world):
        h, leaf = world
        cache = IntermediateCache()
        cache.observe_chain(h.chain_for(leaf))
        found = cache.find_issuers(leaf)
        assert found == [h.issuing_ca.certificate]
        assert cache.hits == 1 and cache.misses == 0

    def test_find_issuers_miss_counted(self, world):
        _h, leaf = world
        cache = IntermediateCache()
        assert cache.find_issuers(leaf) == []
        assert cache.misses == 1

    def test_clear_resets(self, world):
        h, leaf = world
        cache = IntermediateCache()
        cache.observe_chain(h.chain_for(leaf))
        cache.find_issuers(leaf)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0


class TestEviction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            IntermediateCache(capacity=0)

    def test_lru_eviction(self):
        cache = IntermediateCache(capacity=2)
        hierarchies = [
            build_hierarchy(f"Evict{i}", depth=0,
                            key_seed_prefix=f"evict{i}")
            for i in range(3)
        ]
        for h in hierarchies:
            cache.observe(h.root.certificate)
        assert len(cache) == 2
        assert hierarchies[0].root.certificate not in cache
        assert hierarchies[2].root.certificate in cache

    def test_hit_refreshes_recency_under_pressure(self):
        """A repeatedly-*hit* issuer outlives later one-shot
        observations: ``find_issuers`` must refresh the recency of
        the entries it matched, not just ``observe``."""
        cache = IntermediateCache(capacity=3)
        hot = build_hierarchy("HotIssuer", depth=0,
                              key_seed_prefix="hotissuer")
        leaf = hot.issue_leaf("hot.example")
        cache.observe(hot.root.certificate)
        one_shots = [
            build_hierarchy(f"OneShot{i}", depth=0,
                            key_seed_prefix=f"oneshot{i}")
            for i in range(5)
        ]
        for h in one_shots:
            cache.observe(h.root.certificate)
            # the hot issuer keeps completing chains between arrivals
            assert cache.find_issuers(leaf) == [hot.root.certificate]
        assert hot.root.certificate in cache
        assert one_shots[0].root.certificate not in cache
        assert one_shots[-1].root.certificate in cache

    def test_touch_refreshes_recency(self):
        cache = IntermediateCache(capacity=2)
        hierarchies = [
            build_hierarchy(f"Touch{i}", depth=0,
                            key_seed_prefix=f"touch{i}")
            for i in range(3)
        ]
        cache.observe(hierarchies[0].root.certificate)
        cache.observe(hierarchies[1].root.certificate)
        cache.observe(hierarchies[0].root.certificate)  # refresh 0
        cache.observe(hierarchies[2].root.certificate)  # evicts 1
        assert hierarchies[0].root.certificate in cache
        assert hierarchies[1].root.certificate not in cache
