"""The Firefox-style intermediate cache."""

import pytest

from repro.ca import build_hierarchy
from repro.core.relation import RelationPolicy, issued
from repro.trust import IntermediateCache
from repro.x509 import Name


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("CacheT", depth=2, key_seed_prefix="cachet")
    leaf = h.issue_leaf("cachet.example")
    return h, leaf


class TestObservation:
    def test_only_ca_certificates_cached(self, world):
        h, leaf = world
        cache = IntermediateCache()
        assert not cache.observe(leaf)
        assert cache.observe(h.intermediates[0].certificate)
        assert len(cache) == 1

    def test_observe_chain_counts(self, world):
        h, leaf = world
        cache = IntermediateCache()
        cached = cache.observe_chain(h.chain_for(leaf, include_root=True))
        assert cached == 3  # two intermediates + root
        assert leaf not in cache

    def test_reobservation_is_idempotent(self, world):
        h, _leaf = world
        cache = IntermediateCache()
        cert = h.intermediates[0].certificate
        cache.observe(cert)
        cache.observe(cert)
        assert len(cache) == 1


class TestLookup:
    def test_find_issuers_hits(self, world):
        h, leaf = world
        cache = IntermediateCache()
        cache.observe_chain(h.chain_for(leaf))
        found = cache.find_issuers(leaf)
        assert found == [h.issuing_ca.certificate]
        assert cache.hits == 1 and cache.misses == 0

    def test_find_issuers_miss_counted(self, world):
        _h, leaf = world
        cache = IntermediateCache()
        assert cache.find_issuers(leaf) == []
        assert cache.misses == 1

    def test_clear_resets(self, world):
        h, leaf = world
        cache = IntermediateCache()
        cache.observe_chain(h.chain_for(leaf))
        cache.find_issuers(leaf)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0


class TestEviction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            IntermediateCache(capacity=0)

    def test_lru_eviction(self):
        cache = IntermediateCache(capacity=2)
        hierarchies = [
            build_hierarchy(f"Evict{i}", depth=0,
                            key_seed_prefix=f"evict{i}")
            for i in range(3)
        ]
        for h in hierarchies:
            cache.observe(h.root.certificate)
        assert len(cache) == 2
        assert hierarchies[0].root.certificate not in cache
        assert hierarchies[2].root.certificate in cache

    def test_hit_refreshes_recency_under_pressure(self):
        """A repeatedly-*hit* issuer outlives later one-shot
        observations: ``find_issuers`` must refresh the recency of
        the entries it matched, not just ``observe``."""
        cache = IntermediateCache(capacity=3)
        hot = build_hierarchy("HotIssuer", depth=0,
                              key_seed_prefix="hotissuer")
        leaf = hot.issue_leaf("hot.example")
        cache.observe(hot.root.certificate)
        one_shots = [
            build_hierarchy(f"OneShot{i}", depth=0,
                            key_seed_prefix=f"oneshot{i}")
            for i in range(5)
        ]
        for h in one_shots:
            cache.observe(h.root.certificate)
            # the hot issuer keeps completing chains between arrivals
            assert cache.find_issuers(leaf) == [hot.root.certificate]
        assert hot.root.certificate in cache
        assert one_shots[0].root.certificate not in cache
        assert one_shots[-1].root.certificate in cache

    def test_touch_refreshes_recency(self):
        cache = IntermediateCache(capacity=2)
        hierarchies = [
            build_hierarchy(f"Touch{i}", depth=0,
                            key_seed_prefix=f"touch{i}")
            for i in range(3)
        ]
        cache.observe(hierarchies[0].root.certificate)
        cache.observe(hierarchies[1].root.certificate)
        cache.observe(hierarchies[0].root.certificate)  # refresh 0
        cache.observe(hierarchies[2].root.certificate)  # evicts 1
        assert hierarchies[0].root.certificate in cache
        assert hierarchies[1].root.certificate not in cache


#: Every criterion combination the predicate supports.
POLICIES = (
    RelationPolicy(),                                        # name + KID
    RelationPolicy(use_kid_match=False),                     # name only
    RelationPolicy(use_name_match=False),                    # KID only
    RelationPolicy(use_name_match=False, use_kid_match=False),  # sig only
    RelationPolicy(require_signature=False),                 # structural
)


class TestIndexedLookupEquivalence:
    """The indexed ``find_issuers`` must be a pure speedup.

    Results and their LRU order are compared against a brute-force
    scan over the same entries, across every policy combination and a
    population that exercises the identifier edge cases: entries with
    and without SKIDs, subjects with and without AKIDs, and shared
    issuer DNs signed by different keys.
    """

    @pytest.fixture(scope="class")
    def population(self):
        hierarchies = [
            build_hierarchy(f"IdxEq{i}", depth=1,
                            key_seed_prefix=f"idxeq{i}")
            for i in range(4)
        ]
        entries, subjects = [], []
        for h in hierarchies:
            entries.append(h.root.certificate)
            entries.extend(a.certificate for a in h.intermediates)
            # an intermediate with no SKID: under a KID-only policy it
            # passes on the signature alone, so it must surface for
            # every probe
            bare = h.root.issue_intermediate(
                Name.build(common_name=f"{h.root.name} NoSKID"),
                include_skid=False,
            )
            entries.append(bare.certificate)
            subjects.append(h.issue_leaf(f"idxeq{h.root.name}.example"))
            subjects.append(bare.issue_leaf(
                f"bare.{h.root.name}.example".lower()
            ))
            # a leaf with no AKID: KID-only lookups cannot probe the
            # SKID index and must fall back to the full scan
            subjects.append(h.issuing_ca.issue_leaf(
                f"noakid.{h.root.name}.example".lower(),
                include_akid=False,
            ))
        # a subject no entry issued, the all-miss case
        stranger = build_hierarchy("IdxEqStranger", depth=0,
                                   key_seed_prefix="idxeqstranger")
        subjects.append(stranger.root.issue_leaf("stranger.example"))
        return entries, subjects

    @staticmethod
    def brute_force(cache, subject, policy):
        return [
            cert
            for cert in cache._entries.values()
            if cert.fingerprint != subject.fingerprint
            and issued(cert, subject, policy)
        ]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_brute_force_in_lru_order(self, population, policy):
        entries, subjects = population
        for subject in subjects:
            cache = IntermediateCache()
            for cert in entries:
                cache.observe(cert)
            expected = self.brute_force(cache, subject, policy)
            assert cache.find_issuers(subject, policy) == expected

    @pytest.mark.parametrize("policy", POLICIES)
    def test_equivalence_survives_eviction(self, population, policy):
        """Evicted entries leave the indexes too, not just the dict."""
        entries, subjects = population
        cache = IntermediateCache(capacity=len(entries) // 2)
        for cert in entries:
            cache.observe(cert)
        for subject in subjects:
            expected = self.brute_force(cache, subject, policy)
            assert cache.find_issuers(subject, policy) == expected

    def test_refreshed_order_matches_brute_force(self, population):
        """Recency refreshes keep the stamp order and the LRU order in
        lockstep: a second lookup sees the refreshed order."""
        entries, subjects = population
        cache = IntermediateCache()
        for cert in entries:
            cache.observe(cert)
        for subject in subjects:
            cache.find_issuers(subject)  # refresh matched entries
        for subject in subjects:
            expected = self.brute_force(cache, subject, RelationPolicy())
            assert cache.find_issuers(subject) == expected
