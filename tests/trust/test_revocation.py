"""Revocation registry and its interplay with validation/construction."""

import pytest

from repro.chainbuilder import ChainBuilder, MBEDTLS, OPENSSL, validate_path
from repro.trust import (
    RevocationRegistry,
    RevocationStatus,
    RootStore,
)
from repro.x509 import utc

NOW = utc(2024, 6, 15)


class TestRegistry:
    def test_default_status_is_good(self, leaf):
        registry = RevocationRegistry()
        assert registry.status(leaf) is RevocationStatus.GOOD
        assert registry.checks == 1

    def test_revoke_and_unrevoke(self, leaf):
        registry = RevocationRegistry()
        registry.revoke(leaf, reason="keyCompromise")
        assert registry.status(leaf) is RevocationStatus.REVOKED
        assert registry.entry(leaf).reason == "keyCompromise"
        registry.unrevoke(leaf)
        assert registry.status(leaf) is RevocationStatus.GOOD

    def test_responder_outage_returns_unknown(self, leaf, hierarchy):
        registry = RevocationRegistry()
        registry.take_down(hierarchy.issuing_ca.name)
        assert registry.status(leaf) is RevocationStatus.UNKNOWN
        registry.restore(hierarchy.issuing_ca.name)
        assert registry.status(leaf) is RevocationStatus.GOOD

    def test_outage_masks_revocation(self, leaf, hierarchy):
        # A taken-down responder cannot report the revocation: UNKNOWN
        # wins — exactly the soft-fail trap.
        registry = RevocationRegistry()
        registry.revoke(leaf)
        registry.take_down(hierarchy.issuing_ca.name)
        assert registry.status(leaf) is RevocationStatus.UNKNOWN

    def test_revoked_count(self, chain):
        registry = RevocationRegistry()
        for cert in chain[:2]:
            registry.revoke(cert)
        assert registry.revoked_count == 2


class TestValidationIntegration:
    @pytest.fixture()
    def path(self, hierarchy, leaf):
        return [leaf, *[ca.certificate for ca in
                        reversed(hierarchy.intermediates)],
                hierarchy.root.certificate]

    def test_revoked_leaf_fails(self, path, store):
        registry = RevocationRegistry()
        registry.revoke(path[0])
        result = validate_path(path, store, at_time=NOW,
                               revocation=registry)
        assert result.error == "revoked"
        assert result.failing_index == 0

    def test_revoked_intermediate_fails(self, path, store):
        registry = RevocationRegistry()
        registry.revoke(path[1])
        result = validate_path(path, store, at_time=NOW,
                               revocation=registry)
        assert result.error == "revoked"
        assert result.failing_index == 1

    def test_trust_anchor_exempt(self, path, store):
        registry = RevocationRegistry()
        registry.revoke(path[-1])  # the root
        assert validate_path(path, store, at_time=NOW,
                             revocation=registry).ok

    def test_soft_fail_ignores_unknown(self, path, store, hierarchy):
        registry = RevocationRegistry()
        registry.take_down(hierarchy.issuing_ca.name)
        assert validate_path(path, store, at_time=NOW,
                             revocation=registry).ok

    def test_hard_fail_rejects_unknown(self, path, store, hierarchy):
        registry = RevocationRegistry()
        registry.take_down(hierarchy.issuing_ca.name)
        result = validate_path(path, store, at_time=NOW,
                               revocation=registry,
                               revocation_hard_fail=True)
        assert result.error == "revocation_unknown"

    def test_no_registry_means_no_checks(self, path, store):
        assert validate_path(path, store, at_time=NOW).ok


class TestConstructionIntegration:
    def test_partial_validation_skips_revoked_candidate(
        self, hierarchy, leaf, store, aia_repo
    ):
        """MbedTLS-style clients never add a revoked candidate, so a
        revoked intermediate surfaces as a construction failure."""
        registry = RevocationRegistry()
        issuing = hierarchy.intermediates[-1].certificate
        registry.revoke(issuing)
        chain = hierarchy.chain_for(leaf)

        mbed = ChainBuilder(MBEDTLS, store, aia_fetcher=aia_repo,
                            revocation=registry)
        result = mbed.build(chain, at_time=NOW)
        assert not result.anchored
        assert issuing not in result.path

        # OpenSSL-style clients construct first and fail in validation.
        openssl = ChainBuilder(OPENSSL, store, aia_fetcher=aia_repo,
                               revocation=registry)
        verdict = openssl.build_and_validate(
            chain, domain="fixture.example", at_time=NOW
        )
        assert verdict.build.anchored
        assert verdict.validation.error == "revoked"
