"""Property-based tests (hypothesis) on core invariants.

These cover the structures whose correctness everything else leans on:
name folding, validity arithmetic, PEM round-tripping, topology
invariants under arbitrary chain mutations, and the token bucket's rate
guarantee.
"""

from __future__ import annotations

from datetime import timedelta

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ca import build_hierarchy, malform
from repro.core import ChainTopology, analyze_order
from repro.core.leaf import classify_leaf_placement
from repro.net import SimClock, TokenBucket
from repro.x509 import (
    Name,
    Validity,
    classify_name_form,
    from_pem,
    load_pem_bundle,
    to_pem,
    to_pem_bundle,
    utc,
)

# ---------------------------------------------------------------------------
# Shared corpus: a fixed hierarchy plus a pool of related/unrelated certs.
# Built once at import: hypothesis re-runs functions many times.
# ---------------------------------------------------------------------------

_H = build_hierarchy("Prop", depth=2, key_seed_prefix="prop",
                     aia_base="http://aia.prop.example")
_LEAF = _H.issue_leaf("prop.example", not_before=utc(2024, 1, 1), days=365)
_BASE_CHAIN = _H.chain_for(_LEAF, include_root=True)
_OTHER = build_hierarchy("PropOther", depth=1, key_seed_prefix="prop-other")
_POOL = [*_BASE_CHAIN, _OTHER.root.certificate,
         _OTHER.intermediates[0].certificate,
         _H.issue_leaf("prop.example", not_before=utc(2023, 1, 1), days=365)]

chains = st.lists(
    st.sampled_from(_POOL), min_size=1, max_size=10,
).map(lambda certs: [_LEAF, *certs])


# ---------------------------------------------------------------------------
# Name folding
# ---------------------------------------------------------------------------

name_text = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd", "Zs")),
    min_size=1, max_size=30,
).filter(lambda s: s.strip())


#: Values whose uppercase form case-folds back to the original's fold —
#: true for almost everything, excluded exceptions being Unicode
#: oddities (ß, ẖ, dotless ı) where real DN matchers also disagree.
case_roundtrippable = name_text.filter(
    lambda s: s.upper().casefold() == s.casefold()
)


@given(value=case_roundtrippable)
def test_name_comparison_case_insensitive(value):
    assert Name.build(common_name=value) == Name.build(common_name=value.upper())


@given(value=name_text)
def test_name_comparison_whitespace_insensitive(value):
    padded = "  " + value.replace(" ", "   ") + " "
    assert Name.build(common_name=value) == Name.build(common_name=padded)


@given(value=name_text)
def test_name_hash_consistent_with_eq(value):
    # Some characters (e.g. dotless ı) are not case-roundtrippable, so
    # equality may legitimately fail; the invariant is that hashing
    # always agrees with equality.
    a = Name.build(common_name=value)
    b = Name.build(common_name=value.swapcase())
    if a == b:
        assert hash(a) == hash(b)
    assert a == Name.build(common_name=value.casefold())


# ---------------------------------------------------------------------------
# Validity arithmetic
# ---------------------------------------------------------------------------

instants = st.integers(min_value=0, max_value=3650).map(
    lambda days: utc(2020, 1, 1) + timedelta(days=days)
)


@given(start=instants, length=st.integers(min_value=0, max_value=2000),
       probe=instants)
def test_validity_contains_iff_within_bounds(start, length, probe):
    window = Validity(start, start + timedelta(days=length))
    inside = window.not_before <= probe <= window.not_after
    assert window.contains(probe) == inside
    assert window.is_expired(probe) == (probe > window.not_after)
    assert window.is_not_yet_valid(probe) == (probe < window.not_before)


@given(a_start=instants, a_len=st.integers(1, 500),
       b_start=instants, b_len=st.integers(1, 500))
def test_validity_overlap_symmetric(a_start, a_len, b_start, b_len):
    a = Validity(a_start, a_start + timedelta(days=a_len))
    b = Validity(b_start, b_start + timedelta(days=b_len))
    assert a.overlaps(b) == b.overlaps(a)


# ---------------------------------------------------------------------------
# PEM round trips
# ---------------------------------------------------------------------------

@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains)
def test_pem_bundle_roundtrip(chain):
    assert load_pem_bundle(to_pem_bundle(chain)) == chain


@settings(max_examples=25)
@given(cert=st.sampled_from(_POOL))
def test_pem_single_roundtrip_preserves_identity(cert):
    restored = from_pem(to_pem(cert))
    assert restored == cert
    assert restored.is_self_signed == cert.is_self_signed
    assert restored.is_ca == cert.is_ca


# ---------------------------------------------------------------------------
# Topology invariants under arbitrary mutations
# ---------------------------------------------------------------------------

@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains)
def test_topology_invariants(chain):
    topology = ChainTopology(chain)
    labels = topology.position_labels()
    # One label per presented certificate.
    assert len(labels) == len(chain)
    # Node positions are first occurrences of their fingerprints.
    for position, node in topology.nodes.items():
        assert node.occurrences[0] == position
        assert chain[position].fingerprint == node.certificate.fingerprint
    # Every path starts at the anchor and never revisits a node.
    for path in topology.leaf_paths:
        assert path[0] == 0
        assert len(path) == len(set(path))
    # Relevant positions are closed under the parent relation.
    for position in topology.relevant_positions:
        for parent in topology.parents[position]:
            assert parent in topology.relevant_positions


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains)
def test_order_analysis_total_function(chain):
    analysis = analyze_order(chain)
    # compliant implies zero defects, and vice versa for this corpus
    if analysis.compliant:
        assert not analysis.defects
    assert analysis.path_count == len(analysis.path_structures)


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains, seed=st.integers(0, 2**16))
def test_duplication_never_removes_defects(chain, seed):
    """Duplicating a certificate can only add the duplicate defect."""
    import random as _random

    rng = _random.Random(seed)
    index = rng.randrange(len(chain))
    duplicated = malform.duplicate_certificate(chain, index)
    before = analyze_order(chain).defects
    after = analyze_order(duplicated).defects
    from repro.core import OrderDefect

    assert OrderDefect.DUPLICATE_CERTIFICATES in after
    assert before - {OrderDefect.DUPLICATE_CERTIFICATES} <= after


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains, seed=st.integers(0, 2**16))
def test_shuffle_preserves_multiset(chain, seed):
    import random as _random

    shuffled = malform.shuffle_chain(chain, _random.Random(seed))
    assert sorted(c.fingerprint for c in shuffled) == sorted(
        c.fingerprint for c in chain
    )


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains)
def test_leaf_classification_total(chain):
    analysis = classify_leaf_placement("prop.example", chain)
    assert analysis.placement is not None
    # First cert is always the real leaf here, so placement is correct.
    assert analysis.placement.correctly_placed


# ---------------------------------------------------------------------------
# classify_name_form is total and stable
# ---------------------------------------------------------------------------

@given(value=st.text(max_size=80))
def test_classify_name_form_total(value):
    assert classify_name_form(value) in ("domain", "ip", "other")


@given(label=st.from_regex(r"[a-z][a-z0-9-]{0,20}[a-z0-9]", fullmatch=True),
       tld=st.sampled_from(["com", "org", "net", "io"]))
def test_wellformed_domains_classify_as_domains(label, tld):
    assert classify_name_form(f"{label}.{tld}") == "domain"


# ---------------------------------------------------------------------------
# Token bucket never exceeds its configured rate
# ---------------------------------------------------------------------------

@settings(max_examples=40)
@given(
    rate=st.floats(min_value=10, max_value=1e6),
    consumptions=st.lists(st.floats(min_value=0, max_value=1e5),
                          min_size=1, max_size=30),
)
def test_token_bucket_rate_bound(rate, consumptions):
    clock = SimClock()
    bucket = TokenBucket(clock, rate=rate, burst=rate)
    for amount in consumptions:
        bucket.consume(amount)
    total = sum(consumptions)
    elapsed = clock.now()
    # Everything beyond the initial burst must have taken time.
    assert total <= rate * elapsed + rate + 1e-6


# ---------------------------------------------------------------------------
# Repair postconditions under arbitrary mutations
# ---------------------------------------------------------------------------

from repro.core import repair_chain, verify_repair  # noqa: E402
from repro.errors import ChainError  # noqa: E402
from repro.trust import RootStore  # noqa: E402

_REPAIR_STORE = RootStore("prop-repair", [_H.root.certificate])


@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains, seed=st.integers(0, 2**16))
def test_repair_always_yields_single_compliant_path(chain, seed):
    import random as _random

    rng = _random.Random(seed)
    mutated = malform.shuffle_chain(
        malform.duplicate_certificate(chain, rng.randrange(len(chain))),
        rng,
        keep_leaf_first=True,
    )
    try:
        result = repair_chain(mutated, domain="prop.example",
                              store=_REPAIR_STORE)
    except ChainError:
        return  # a list with no end-entity cert is legitimately unrepairable
    assert verify_repair(mutated, result, domain="prop.example")
    # Only input certificates appear (no fetcher was provided).
    allowed = {cert.fingerprint for cert in mutated}
    assert all(cert.fingerprint in allowed for cert in result.chain)


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains, seed=st.integers(0, 2**16))
def test_repair_idempotent(chain, seed):
    import random as _random

    rng = _random.Random(seed)
    mutated = malform.shuffle_chain(chain, rng, keep_leaf_first=True)
    try:
        once = repair_chain(mutated, domain="prop.example",
                            store=_REPAIR_STORE)
    except ChainError:
        return
    twice = repair_chain(once.chain, domain="prop.example",
                         store=_REPAIR_STORE)
    assert twice.chain == once.chain
    assert not twice.changed


# ---------------------------------------------------------------------------
# Certificate-pool path enumeration invariants
# ---------------------------------------------------------------------------

from repro.core import CertificatePool  # noqa: E402


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains)
def test_pool_paths_are_linked_and_acyclic(chain):
    from repro.core import issued

    pool = CertificatePool(list(chain))
    for path in pool.all_paths(chain[0], max_depth=8):
        assert path[0].fingerprint == chain[0].fingerprint
        fingerprints = [cert.fingerprint for cert in path]
        assert len(fingerprints) == len(set(fingerprints))
        for child, parent in zip(path, path[1:]):
            assert issued(parent, child)


# ---------------------------------------------------------------------------
# The construction engine is a total function over arbitrary lists
# ---------------------------------------------------------------------------

from repro.chainbuilder import ALL_CLIENTS, ChainBuilder  # noqa: E402
from repro.chainbuilder.verify import ERROR_CODES  # noqa: E402

_ENGINE_STORE = RootStore("prop-engine", [_H.root.certificate])
_BUILD_ERRORS = {
    "no_issuer_found", "untrusted_root", "length_limit_exceeded",
    "input_list_too_long", "self_signed_leaf_rejected", "empty_input",
}
_CLIENT_CYCLE = list(ALL_CLIENTS)


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains, pick=st.integers(0, len(_CLIENT_CYCLE) - 1))
def test_engine_total_function(chain, pick):
    """Every client yields a well-formed verdict on every input list:
    no exceptions, known error codes, paths linked by issuance."""
    from repro.core import issued

    policy = _CLIENT_CYCLE[pick]
    builder = ChainBuilder(policy, _ENGINE_STORE)
    verdict = builder.build_and_validate(
        chain, domain="prop.example", at_time=utc(2024, 6, 15)
    )
    if verdict.error is not None:
        assert verdict.error in _BUILD_ERRORS | set(ERROR_CODES), verdict.error
    path = verdict.build.path
    for child, parent in zip(path, path[1:]):
        assert issued(parent, child)
    if verdict.ok:
        assert verdict.build.anchored
        assert _ENGINE_STORE.contains_key_of(path[-1])


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(chain=chains)
def test_engine_deterministic_per_input(chain):
    """Two runs of the same client over the same list agree exactly."""
    from repro.chainbuilder import CHROME

    builder = ChainBuilder(CHROME, _ENGINE_STORE)
    first = builder.build(chain, at_time=utc(2024, 6, 15))
    second = builder.build(chain, at_time=utc(2024, 6, 15))
    assert first.anchored == second.anchored
    assert first.structure == second.structure
    assert first.error == second.error
