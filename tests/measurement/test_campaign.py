"""End-to-end measurement campaigns over the simulated network."""

import pytest

from repro.measurement import Campaign
from repro.webpki import Ecosystem, EcosystemConfig, VANTAGE_AU, VANTAGE_US


@pytest.fixture(scope="module")
def campaign():
    ecosystem = Ecosystem.generate(EcosystemConfig(n_domains=400, seed=21))
    return Campaign(ecosystem)


class TestCollection:
    def test_collect_reaches_most_domains(self, campaign):
        result = campaign.collect()
        population = len(campaign.ecosystem.deployments)
        for vantage in (VANTAGE_US, VANTAGE_AU):
            assert result.reachable_counts[vantage] >= 0.9 * population
        assert result.total_observations >= 0.9 * population

    def test_union_includes_vantage_disagreements(self, campaign):
        result = campaign.collect()
        variant_domains = {
            d.domain for d in campaign.ecosystem.deployments
            if d.alt_vantage_chain is not None
            and not d.unreachable_from
        }
        observed = [domain for domain, _ in result.observations]
        for domain in variant_domains:
            assert observed.count(domain) == 2

    def test_unique_counts_consistent(self, campaign):
        result = campaign.collect()
        assert 0 < result.unique_chains <= result.total_observations
        assert result.unique_certificates > 0

    def test_tls_version_comparison_high(self, campaign):
        identical = campaign.compare_tls_versions(sample=200)
        assert identical >= 95.0  # paper: 98.8%


class TestUnionAccounting:
    """Two domains serving the identical chain are two *observations*
    but one unique *chain*.  ``unique_chains`` used to be keyed by
    (domain, chain_key), silently restating the observation count."""

    @pytest.fixture()
    def cloned_campaign(self):
        import dataclasses

        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=40, seed=21)
        )
        donor = next(
            d for d in ecosystem.deployments if not d.unreachable_from
        )
        clone = dataclasses.replace(
            donor,
            domain="clone-of-" + donor.domain,
            rank=len(ecosystem.deployments) + 1,
            case_study=None,
        )
        ecosystem.deployments.append(clone)
        return Campaign(ecosystem, network=ecosystem.install())

    def test_unique_chains_counts_distinct_chains(
        self, cloned_campaign, tmp_path
    ):
        from repro.obs import RunJournal
        from repro.obs.journal import read_journal
        from repro.obs.report import build_report, render_report_text

        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, cloned_campaign.manifest()) as journal:
            result = cloned_campaign.collect(journal=journal)

        distinct_chains = {
            record.chain_key
            for records in result.per_vantage.values()
            for record in records
            if record.success and record.chain
        }
        assert result.unique_chains == len(distinct_chains)
        # the clone duplicates its donor's chain: strictly fewer
        # unique chains than union observations
        assert result.unique_chains < result.total_observations

        manifest, events = read_journal(path)
        collection = next(e for e in events if e["type"] == "collection")
        assert collection["unique_chains"] == result.unique_chains
        assert collection["observations"] == result.total_observations
        assert collection["unique_chains"] < collection["observations"]

        rendered = render_report_text(build_report(manifest, events))
        assert f"{result.unique_chains:,}" in rendered
        assert f"{result.total_observations:,}" in rendered


class TestAnalysis:
    def test_analyze_scanned_matches_ground_truth(self, campaign):
        scanned, _ = campaign.analyze(campaign.collect().observations)
        truth, _ = campaign.analyze()
        # Scanning loses only the unreachable minority; headline rates
        # must agree within a couple of points.
        assert scanned.noncompliance_rate == pytest.approx(
            truth.noncompliance_rate, abs=2.5
        )

    def test_reports_returned_per_observation(self, campaign):
        observations = campaign.ecosystem.observations()[:50]
        report, reports = campaign.analyze(observations)
        assert report.total == len(reports) == 50

    def test_run_default_campaign_smoke(self):
        from repro.measurement import run_default_campaign

        campaign, report = run_default_campaign(n_domains=150, seed=33)
        assert report.total >= 140
        assert 0 <= report.noncompliance_rate <= 100


class TestFlakyCollection:
    def test_retries_recover_coverage(self):
        """A flaky population scanned with retries reaches near-full
        coverage; without retries it visibly drops."""
        from repro.net import Scanner
        from repro.webpki import Ecosystem, EcosystemConfig

        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=200, seed=31)
        )
        network = ecosystem.install()
        domains = [d.domain for d in ecosystem.deployments
                   if not d.unreachable_from][:150]
        for domain in domains:
            network.make_flaky(domain, 0.35)

        impatient = Scanner(network, "us")
        flaky_hits = sum(
            r.success for r in impatient.scan(domains)
        )
        patient = Scanner(network, "us", retries=5, retry_cooldown=1.0)
        patient_hits = sum(
            r.success for r in patient.scan(domains)
        )
        assert patient_hits > flaky_hits
        assert patient_hits >= 0.97 * len(domains)
