"""Journaled campaigns: crash, resume, byte-identical final tables."""

import pytest

from repro.errors import JournalError
from repro.measurement import (
    Campaign,
    TableContext,
    render_table_3,
    render_table_5,
    render_table_7,
)
from repro.obs import RunJournal, read_journal
from repro.webpki import Ecosystem, EcosystemConfig


@pytest.fixture(scope="module")
def ecosystem():
    return Ecosystem.generate(EcosystemConfig(n_domains=250, seed=17))


@pytest.fixture(scope="module")
def campaign(ecosystem):
    return Campaign(ecosystem)


def render_all_tables(ecosystem, observations, reports) -> str:
    ctx = TableContext(ecosystem, observations, reports)
    return "\n".join((
        render_table_3(ctx), render_table_5(ctx), render_table_7(ctx)
    ))


class TestManifest:
    def test_manifest_pins_config_seed_and_trust_anchors(self, campaign):
        manifest = campaign.manifest()
        assert manifest["seed"] == 17
        assert manifest["config"]["n_domains"] == 250
        assert len(manifest["root_store_digest"]) == 64

    def test_different_seed_changes_identity(self, campaign):
        other = Campaign(Ecosystem.generate(
            EcosystemConfig(n_domains=250, seed=18)
        ))
        assert (other.manifest()["root_store_digest"]
                != campaign.manifest()["root_store_digest"])


class TestJournaledAnalysis:
    def test_verdicts_are_journaled(self, campaign, tmp_path):
        observations = campaign.ecosystem.observations()[:40]
        with RunJournal.create(tmp_path / "run.jsonl",
                               campaign.manifest()) as journal:
            campaign.analyze(observations, journal=journal)
        _, events = read_journal(tmp_path / "run.jsonl")
        verdicts = [e for e in events if e["type"] == "verdict"]
        assert len(verdicts) == len(observations)
        assert verdicts[0]["chain_key"]
        assert "leaf" in verdicts[0]["report"]

    def test_crash_resume_is_byte_identical(self, campaign, tmp_path):
        """The ISSUE acceptance criterion, end to end."""
        path = tmp_path / "run.jsonl"
        observations = campaign.ecosystem.observations()
        baseline, reports = campaign.analyze(observations)
        expected = render_all_tables(
            campaign.ecosystem, observations, reports
        )

        # a run that dies after 100 chains, mid-way through a write
        with RunJournal.create(path, campaign.manifest()) as journal:
            campaign.analyze(observations[:100], journal=journal)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"verdict","domain":"crash.ex')

        resumed_journal = RunJournal.open(path, campaign.manifest())
        assert resumed_journal.verdict_count == 100
        with resumed_journal:
            report, reports = campaign.analyze(
                observations, journal=resumed_journal
            )
        assert report == baseline
        assert render_all_tables(
            campaign.ecosystem, observations, reports
        ) == expected

    def test_resume_counts_reconstructed_chains(self, campaign, tmp_path):
        from repro import obs

        path = tmp_path / "run.jsonl"
        observations = campaign.ecosystem.observations()[:30]
        with RunJournal.create(path, campaign.manifest()) as journal:
            campaign.analyze(observations[:10], journal=journal)
        with obs.instrumented() as (registry, _):
            with RunJournal.open(path, campaign.manifest()) as journal:
                campaign.analyze(observations, journal=journal)
            assert registry.total("campaign.chains_resumed") == 10
            assert registry.total("campaign.chains_analyzed") == 30
        obs.disable()

    def test_foreign_journal_refused(self, campaign, tmp_path):
        path = tmp_path / "run.jsonl"
        other = Campaign(Ecosystem.generate(
            EcosystemConfig(n_domains=250, seed=18)
        ))
        RunJournal.create(path, other.manifest()).close()
        with pytest.raises(JournalError, match="manifest mismatch"):
            RunJournal.open(path, campaign.manifest())


class TestJournaledCollection:
    def test_scan_events_cover_both_vantages(self, campaign, tmp_path):
        path = tmp_path / "collect.jsonl"
        with RunJournal.create(path, campaign.manifest()) as journal:
            result = campaign.collect(journal=journal)
        _, events = read_journal(path)
        scans = [e for e in events if e["type"] == "scan"]
        vantages = {e["vantage"] for e in scans}
        assert vantages == {"us", "au"}
        assert len(scans) == 2 * len(campaign.ecosystem.deployments)
        (summary,) = [e for e in events if e["type"] == "collection"]
        assert summary["observations"] == result.total_observations

    def test_resumed_collect_does_not_duplicate_events(
        self, campaign, tmp_path
    ):
        path = tmp_path / "collect.jsonl"
        with RunJournal.create(path, campaign.manifest()) as journal:
            campaign.collect(journal=journal)
        _, first = read_journal(path)

        with RunJournal.open(path, campaign.manifest()) as journal:
            campaign.collect(journal=journal)
        _, second = read_journal(path)
        assert second == first
        scans = [e for e in second if e["type"] == "scan"]
        assert len(scans) == len({
            (e["domain"], e["vantage"]) for e in scans
        })
        assert len([e for e in second if e["type"] == "collection"]) == 1

    def test_interrupted_collect_resumes_without_rescan_events(
        self, campaign, tmp_path
    ):
        """Crash mid-collect: already-journaled scans are not re-appended."""
        path = tmp_path / "collect.jsonl"

        class Abort(RuntimeError):
            pass

        class AbortingProgress:
            """Dies after 60 updates, simulating a mid-scan crash."""

            def __init__(self):
                self.updates = 0

            def update(self, *, ok):
                self.updates += 1
                if self.updates >= 60:
                    raise Abort

            def finish(self):
                pass

        journal = RunJournal.create(path, campaign.manifest())
        with pytest.raises(Abort):
            campaign.collect(
                journal=journal,
                progress_factory=lambda vantage, total: AbortingProgress(),
            )
        journal.close()
        _, partial = read_journal(path)
        partial_scans = [e for e in partial if e["type"] == "scan"]
        assert partial_scans

        with RunJournal.open(path, campaign.manifest()) as journal:
            campaign.collect(journal=journal)
        _, events = read_journal(path)
        scans = [e for e in events if e["type"] == "scan"]
        assert len(scans) == 2 * len(campaign.ecosystem.deployments)
        assert len(scans) == len({
            (e["domain"], e["vantage"]) for e in scans
        })
        assert len([e for e in events if e["type"] == "collection"]) == 1

    def test_progress_factory_sees_every_domain(self, campaign):
        class Recorder:
            def __init__(self, vantage, total):
                self.vantage = vantage
                self.total = total
                self.updates = 0
                self.finished = False

            def update(self, *, ok):
                self.updates += 1

            def finish(self):
                self.finished = True

        recorders = []

        def factory(vantage, total):
            recorder = Recorder(vantage, total)
            recorders.append(recorder)
            return recorder

        campaign.collect(progress_factory=factory)
        assert [r.vantage for r in recorders] == ["us", "au"]
        assert all(r.updates == r.total for r in recorders)
        assert all(r.finished for r in recorders)
