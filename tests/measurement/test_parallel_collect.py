"""The probe/replay collection pipeline: byte-parity with the direct
scan loop.

Same contract-from-every-angle structure as ``test_parallel``: with or
without a fork pool, with or without a journal, with or without an
active fault plan, collection through ``collect_workers`` must be
indistinguishable — records, union observations, journal bytes,
degraded-vantage sets, scan metrics — from the direct sequential
sweep, because the replay performs every order-dependent effect (RNG
draw, clock advance, fault consultation, rate limiting, breaker
transition) in the sequential order and only the pure handshake
outcome comes from the probe.
"""

import pytest

from repro import obs
from repro.measurement import Campaign
from repro.measurement.parallel import OVERSUBSCRIBE_ENV
from repro.measurement.parallel_collect import probe_collection
from repro.net.scanner import (
    RATE_LIMIT_BYTES_PER_SECOND,
    RetryPolicy,
    Scanner,
)
from repro.net.simnet import FaultPlan, NetworkError
from repro.net.tls import TLS12, perform_handshake, probe_handshake
from repro.obs import RunJournal
from repro.webpki import Ecosystem, EcosystemConfig
from repro.webpki.ecosystem import VANTAGE_AU, VANTAGE_US

VANTAGES = (VANTAGE_US, VANTAGE_AU)


@pytest.fixture(scope="module")
def ecosystem():
    return Ecosystem.generate(EcosystemConfig(n_domains=80, seed=19))


@pytest.fixture(scope="module")
def domains(ecosystem):
    return [d.domain for d in ecosystem.deployments]


def fresh_campaign(ecosystem):
    """A campaign on its own fresh, identically-seeded network."""
    return Campaign(ecosystem, network=ecosystem.install())


class TestProbeEquivalence:
    """A probe is the handler's answer, computed without side effects
    on the simulation state."""

    def test_probe_matches_live_handshake(self, ecosystem, domains):
        live_net = ecosystem.install()
        probe_net = ecosystem.install()
        checked = 0
        for domain in domains[:20]:
            if not probe_net.is_reachable(VANTAGE_US, domain):
                continue
            probe = probe_handshake(probe_net, VANTAGE_US, domain,
                                    versions=(TLS12,))
            if probe.kind != "success":
                continue
            result = perform_handshake(live_net, VANTAGE_US, domain,
                                       versions=(TLS12,))
            assert probe.version == result.version
            assert probe.wire_bytes == result.wire_bytes
            assert [c.fingerprint for c in probe.chain] == [
                c.fingerprint for c in result.chain
            ]
            checked += 1
        assert checked > 5

    def test_probe_touches_neither_clock_nor_rng(self, ecosystem,
                                                 domains):
        network = ecosystem.install()
        before_clock = network.clock.now()
        before_connects = dict(network._connects)
        for domain in domains[:20]:
            probe_handshake(network, VANTAGE_US, domain,
                            versions=(TLS12,))
        assert network.clock.now() == before_clock
        # no connect ordinals consumed -> no RNG draws keyed off them
        assert dict(network._connects) == before_connects

    def test_refused_probe_resolves_to_network_error(self, ecosystem):
        network = ecosystem.install()
        probe = probe_handshake(network, VANTAGE_US, "nosuch.example",
                                versions=(TLS12,))
        assert probe.kind == "refused"
        with pytest.raises(NetworkError):
            probe.resolve()

    def test_memo_decodes_each_flight_once(self, ecosystem, domains):
        network = ecosystem.install()
        memo: dict = {}
        domain = next(d for d in domains
                      if network.is_reachable(VANTAGE_US, d)
                      and network.is_reachable(VANTAGE_AU, d))
        us = probe_handshake(network, VANTAGE_US, domain,
                             versions=(TLS12,), memo=memo)
        au = probe_handshake(network, VANTAGE_AU, domain,
                             versions=(TLS12,), memo=memo)
        if us.kind == "success" and au.kind == "success" \
                and us.chain == au.chain:
            # shared flight -> the exact same decoded tuple object
            assert us.chain is au.chain


class TestProbeCollection:
    def test_fork_pool_table_matches_in_process(self, ecosystem,
                                                domains):
        network = ecosystem.install()
        table_seq, stats_seq = probe_collection(
            network, VANTAGES, domains, workers=1,
        )
        table_fork, stats_fork = probe_collection(
            ecosystem.install(), VANTAGES, domains, workers=4,
            oversubscribe=True,
        )
        assert stats_seq.mode == "in-process"
        assert stats_fork.mode == "fork-pool"
        assert stats_fork.effective_workers == 4
        assert table_fork.keys() == table_seq.keys()
        for key, probe in table_seq.items():
            other = table_fork[key]
            assert other.kind == probe.kind
            assert other.version == probe.version
            assert other.wire_bytes == probe.wire_bytes
            assert [c.fingerprint for c in other.chain] == [
                c.fingerprint for c in probe.chain
            ]

    def test_unreachable_units_get_no_probe(self, ecosystem, domains):
        network = ecosystem.install()
        table, stats = probe_collection(network, VANTAGES, domains,
                                        workers=1)
        unreachable = [
            (v, d) for v in VANTAGES for d in domains
            if not network.is_reachable(v, d)
        ]
        assert stats.skipped_unreachable == len(unreachable)
        for unit in unreachable:
            assert unit not in table
        assert stats.probed + stats.skipped_unreachable == stats.units

    def test_oversubscribe_env(self, ecosystem, domains, monkeypatch):
        monkeypatch.setenv(OVERSUBSCRIBE_ENV, "1")
        _table, stats = probe_collection(
            ecosystem.install(), VANTAGES, domains[:10], workers=2,
        )
        assert stats.mode == "fork-pool"
        assert stats.effective_workers == 2


class TestCollectParity:
    """collect_workers=N is byte-identical to the direct sweep."""

    def collect(self, ecosystem, *, workers=None, journal=None):
        campaign = fresh_campaign(ecosystem)
        kwargs = {"journal": journal}
        if workers is not None:
            kwargs["collect_workers"] = workers
            kwargs["oversubscribe"] = workers > 1
        return campaign.collect(**kwargs), campaign

    def assert_same_result(self, left, right):
        assert left.per_vantage == right.per_vantage
        assert [
            (d, [c.fingerprint for c in chain])
            for d, chain in left.observations
        ] == [
            (d, [c.fingerprint for c in chain])
            for d, chain in right.observations
        ]
        assert left.reachable_counts == right.reachable_counts
        assert left.degraded_vantages == right.degraded_vantages

    def test_records_and_observations_match(self, ecosystem):
        direct, _ = self.collect(ecosystem)
        replay_one, _ = self.collect(ecosystem, workers=1)
        replay_fork, _ = self.collect(ecosystem, workers=4)
        self.assert_same_result(replay_one, direct)
        self.assert_same_result(replay_fork, direct)

    def test_journal_bytes_match(self, ecosystem, tmp_path):
        paths = {}
        for tag, workers in (("direct", None), ("one", 1), ("fork", 4)):
            path = tmp_path / f"{tag}.jsonl"
            campaign = fresh_campaign(ecosystem)
            kwargs = {}
            if workers is not None:
                kwargs = {"collect_workers": workers,
                          "oversubscribe": workers > 1}
            with RunJournal.open(path, campaign.manifest()) as journal:
                campaign.collect(journal=journal, **kwargs)
            paths[tag] = path.read_bytes()
        assert paths["one"] == paths["direct"]
        assert paths["fork"] == paths["direct"]

    def test_scan_metrics_match_across_worker_counts(self, ecosystem):
        """Deterministic metric families are identical for N=1 vs N=4;
        only the real-time ``phase.*`` timers may differ."""
        obs.disable()

        def totals(workers):
            with obs.instrumented() as (registry, _):
                self.collect(ecosystem, workers=workers)
                snapshot = registry.snapshot()
                return {
                    name: registry.total(name)
                    for name, family in snapshot.items()
                    if family["type"] == "counter"
                    and not name.startswith("phase.")
                }

        one = totals(1)
        fork = totals(4)
        obs.disable()
        assert fork == one
        assert one["collect.probe.scans"] > 0

    def test_rate_limit_bound_holds_under_sharded_probing(
        self, ecosystem, domains
    ):
        """The 500 KB/s per-vantage cap is consumed only in the
        sequential replay, so sharding the probe phase cannot relax
        it."""
        network = ecosystem.install()
        table, stats = probe_collection(network, VANTAGES, domains,
                                        workers=4, oversubscribe=True)
        assert stats.mode == "fork-pool"
        scanner = Scanner(network, VANTAGE_US)
        scanner.scan(domains, probes=table)
        assert scanner.bucket.rate == RATE_LIMIT_BYTES_PER_SECOND
        observed = scanner.bucket.observed_rate()
        cap = scanner.bucket.rate
        assert observed <= cap + cap / max(network.clock.now(), 1e-9)


class TestChaosParity:
    """Sequential vs collect_workers=N under an active FaultPlan:
    byte-identical journals and identical degraded-vantage sets."""

    def faulted_collect(self, ecosystem, tmp_path, tag, *,
                        workers=None, outage=False):
        campaign = fresh_campaign(ecosystem)
        network = campaign.network
        domains = [d.domain for d in ecosystem.deployments]
        plan = (FaultPlan(seed=99)
                .flaky_host(domains[3], 0.5)
                .truncate_handshakes(domains[5], 0.4)
                .fail_next_connects(domains[7], 2)
                .latency_spike(VANTAGE_AU, 0.0, 5.0, 8.0))
        if outage:
            plan.vantage_outage(VANTAGE_AU, 0.0)
        network.set_fault_plan(plan)
        path = tmp_path / f"chaos-{tag}.jsonl"
        kwargs = {}
        if workers is not None:
            kwargs = {"collect_workers": workers,
                      "oversubscribe": workers > 1}
        with RunJournal.open(path, campaign.manifest()) as journal:
            result = campaign.collect(
                journal=journal,
                retry_policy=RetryPolicy(retries=2, base_delay=0.05),
                breaker_threshold=5,
                **kwargs,
            )
        return result, path.read_bytes(), dict(plan.injected)

    def test_fault_plan_journal_bytes_identical(self, ecosystem,
                                                tmp_path):
        direct, direct_bytes, direct_injected = self.faulted_collect(
            ecosystem, tmp_path, "direct",
        )
        for tag, workers in (("one", 1), ("fork", 4)):
            result, journal_bytes, injected = self.faulted_collect(
                ecosystem, tmp_path, tag, workers=workers,
            )
            assert journal_bytes == direct_bytes
            assert injected == direct_injected
            assert result.per_vantage == direct.per_vantage
            assert result.degraded_vantages == direct.degraded_vantages

    def test_vantage_outage_degrades_identically(self, ecosystem,
                                                 tmp_path):
        direct, direct_bytes, _ = self.faulted_collect(
            ecosystem, tmp_path, "direct-out", outage=True,
        )
        fork, fork_bytes, _ = self.faulted_collect(
            ecosystem, tmp_path, "fork-out", workers=4, outage=True,
        )
        assert direct.degraded_vantages  # the outage actually bit
        assert fork.degraded_vantages == direct.degraded_vantages
        assert fork_bytes == direct_bytes
