"""The persistent verdict store: crash safety and warm-start parity.

Two contracts under test.  First, the store itself is crash-safe: a
torn segment tail, an interrupted compaction, or a half-written record
never loses previously-fsynced verdicts, and ``check_store`` reports
damage without repairing anything.  Second, a warm run served from the
store is byte-identical to the cold run that populated it — reports,
aggregate tables, and journal bytes — for the compliance pipeline and
the differential harness alike.
"""

import json

import pytest

from repro.chainbuilder import DifferentialHarness
from repro.core import analyze_chain
from repro.errors import StoreError
from repro.measurement import (
    Campaign,
    VerdictCache,
    VerdictStore,
    check_store,
)
from repro.measurement.parallel import analyze_observations, chain_key
from repro.measurement.store import SCHEMA_VERSION
from repro.obs import RunJournal
from repro.webpki import Ecosystem, EcosystemConfig


@pytest.fixture(scope="module")
def ecosystem():
    return Ecosystem.generate(EcosystemConfig(n_domains=90, seed=11))


@pytest.fixture(scope="module")
def union(ecosystem):
    return ecosystem.registry.union()


@pytest.fixture(scope="module")
def stream(ecosystem):
    """Union observations plus repeats, like a two-vantage scan."""
    base = ecosystem.observations()
    return base + [(d, list(c)) for d, c in base[:30]]


def hexkey(chain):
    return tuple(cert.fingerprint_hex for cert in chain)


def make_report(ecosystem, union, index=0):
    domain, chain = ecosystem.observations()[index]
    report = analyze_chain(domain, chain, union, ecosystem.aia_repo)
    return hexkey(chain), union.digest(), report


class TestRoundTrip:
    def test_report_survives_reopen(self, ecosystem, union, tmp_path):
        key, digest, report = make_report(ecosystem, union)
        with VerdictStore(tmp_path / "vs") as store:
            assert store.put_report(key, digest, report)
            assert store.get_report(key, digest) is report
        with VerdictStore(tmp_path / "vs") as store:
            loaded = store.get_report(key, digest)
            assert loaded == report
            assert loaded.to_json() == report.to_json()
            # wrong trust anchors: a different verdict, so a miss
            assert store.get_report(key, "0" * 64) is None
            assert (store.hits, store.misses) == (1, 1)

    def test_duplicate_put_is_a_noop(self, ecosystem, union, tmp_path):
        key, digest, report = make_report(ecosystem, union)
        with VerdictStore(tmp_path / "vs") as store:
            assert store.put_report(key, digest, report)
            assert not store.put_report(key, digest, report)
            assert store.writes == 1
            assert len(store) == 1

    def test_outcome_is_domain_sensitive(self, tmp_path):
        key = ("ab" * 32,)
        with VerdictStore(tmp_path / "vs") as store:
            store.put_outcome("a.example", key, "cap", chain_length=3,
                              results={"openssl": "ok"})
            assert store.get_outcome("a.example", key, "cap") == {
                "chain_length": 3, "results": {"openssl": "ok"},
            }
            assert store.get_outcome("b.example", key, "cap") is None
            assert store.get_outcome("a.example", key, "other") is None
        with VerdictStore(tmp_path / "vs") as store:
            assert store.get_outcome("a.example", key, "cap") == {
                "chain_length": 3, "results": {"openssl": "ok"},
            }

    def test_identity_is_stable_and_path_free(self, tmp_path):
        with VerdictStore(tmp_path / "vs") as store:
            first = store.identity()
        with VerdictStore(tmp_path / "vs") as store:
            assert store.identity() == first
        assert set(first) == {"store_id", "schema_version"}
        assert first["schema_version"] == SCHEMA_VERSION

    def test_foreign_directory_is_rejected(self, tmp_path):
        target = tmp_path / "notastore"
        target.mkdir()
        (target / "meta.json").write_text('{"format": "something-else"}')
        with pytest.raises(StoreError):
            VerdictStore(target)

    def test_closed_store_rejects_writes(self, ecosystem, union, tmp_path):
        key, digest, report = make_report(ecosystem, union)
        store = VerdictStore(tmp_path / "vs")
        store.close()
        with pytest.raises(StoreError):
            store.put_report(key, digest, report)


class TestRotationAndCompaction:
    def test_rotation_preserves_every_record(self, ecosystem, union,
                                             tmp_path):
        with VerdictStore(tmp_path / "vs", segment_bytes=1024) as store:
            for index in range(10):
                key, digest, report = make_report(ecosystem, union, index)
                store.put_report(key, digest, report)
            assert store.stats()["segments"] > 1
        with VerdictStore(tmp_path / "vs") as store:
            assert store.stats()["reports"] == 10

    def test_compact_drops_stale_records(self, ecosystem, union, tmp_path):
        key, digest, report = make_report(ecosystem, union)
        with VerdictStore(tmp_path / "vs") as store:
            store.put_report(key, digest, report)
        segment = tmp_path / "vs" / "segments" / "000001.seg"
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"report","schema":999,"digest":"x",'
                         '"chain_key":[],"report":{}}\n')
        with VerdictStore(tmp_path / "vs") as store:
            assert store.stale_records == 1
            summary = store.compact()
            assert summary == {"segments_before": 1, "segments_after": 1,
                               "kept": 1, "dropped": 1}
            assert store.get_report(key, digest).to_json() == \
                report.to_json()
        check = check_store(tmp_path / "vs")
        assert check.ok and check.stale_records == 0


class TestCrashSafety:
    def populate(self, path, ecosystem, union, count=4):
        with VerdictStore(path) as store:
            for index in range(count):
                key, digest, report = make_report(ecosystem, union, index)
                store.put_report(key, digest, report)

    def test_torn_tail_is_truncated_on_reopen(self, ecosystem, union,
                                              tmp_path):
        path = tmp_path / "vs"
        self.populate(path, ecosystem, union)
        segment = path / "segments" / "000001.seg"
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"report","schema":1,"di')
        with VerdictStore(path) as store:
            assert store.recovered_records == 1
            assert store.stats()["reports"] == 4
        # reopening repaired the file: a second check is clean
        assert check_store(path).ok

    def test_undecodable_final_line_is_torn_too(self, ecosystem, union,
                                                tmp_path):
        path = tmp_path / "vs"
        self.populate(path, ecosystem, union)
        segment = path / "segments" / "000001.seg"
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write("garbage not json\n")
        with VerdictStore(path) as store:
            assert store.recovered_records == 1
            assert store.stats()["reports"] == 4

    def test_interior_damage_raises(self, ecosystem, union, tmp_path):
        path = tmp_path / "vs"
        self.populate(path, ecosystem, union)
        segment = path / "segments" / "000001.seg"
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"XXXX corrupt XXXX\n"
        segment.write_bytes(b"".join(lines))
        with pytest.raises(StoreError):
            VerdictStore(path)

    def test_half_rotated_tmp_is_removed(self, ecosystem, union, tmp_path):
        path = tmp_path / "vs"
        self.populate(path, ecosystem, union)
        leftover = path / "segments" / "000002.seg.tmp"
        leftover.write_text("interrupted compaction\n")
        check = check_store(path)
        assert not check.ok
        assert any("leftover" in p for p in check.problems)
        with VerdictStore(path) as store:
            assert store.removed_tmp == 1
            assert store.stats()["reports"] == 4
        assert not leftover.exists()

    def test_check_store_reports_without_repairing(self, ecosystem, union,
                                                   tmp_path):
        path = tmp_path / "vs"
        self.populate(path, ecosystem, union)
        segment = path / "segments" / "000001.seg"
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"repo')
        damaged = segment.read_bytes()
        check = check_store(path)
        assert not check.ok
        assert any("torn final record" in p for p in check.problems)
        assert check.reports == 4
        # verify is read-only: the damage is still on disk
        assert segment.read_bytes() == damaged

    def test_check_store_on_a_non_store(self, tmp_path):
        check = check_store(tmp_path / "missing")
        assert not check.ok and not check.store_id


class TestVerdictCacheBacking:
    def test_miss_probes_backing_and_promotes(self, ecosystem, union,
                                              tmp_path):
        key_hex, digest, report = make_report(ecosystem, union)
        key = chain_key(ecosystem.observations()[0][1])
        with VerdictStore(tmp_path / "vs") as store:
            store.put_report(key_hex, digest, report)
            store.hits = store.misses = 0
            cache = VerdictCache(backing=store)
            first = cache.report_for(key, digest)
            assert first.to_json() == report.to_json()
            assert store.hits == 1
            # promoted into memory: the second hit skips the store
            assert cache.report_for(key, digest) is first
            assert store.hits == 1

    def test_store_report_writes_through(self, ecosystem, union, tmp_path):
        key_hex, digest, report = make_report(ecosystem, union)
        key = chain_key(ecosystem.observations()[0][1])
        with VerdictStore(tmp_path / "vs") as store:
            cache = VerdictCache(backing=store)
            cache.store_report(key, digest, report)
            assert store.has_report(key_hex, digest)
        with VerdictStore(tmp_path / "vs") as store:
            assert VerdictCache(backing=store).has_report(key, digest)


class TestWarmStartParity:
    def run_journaled(self, campaign, stream, path, **kwargs):
        with RunJournal.create(path, campaign.manifest()) as journal:
            report, reports = campaign.analyze(
                stream, journal=journal, **kwargs
            )
        return report, reports, path.read_bytes()

    def test_warm_run_is_byte_identical(self, ecosystem, stream, tmp_path):
        campaign = Campaign(ecosystem)
        with VerdictStore(tmp_path / "vs") as cold_store:
            _, cold_reports, cold_bytes = self.run_journaled(
                campaign, stream, tmp_path / "cold.jsonl",
                verdict_store=cold_store,
            )
        with VerdictStore(tmp_path / "vs") as store:
            _, warm_reports, warm_bytes = self.run_journaled(
                campaign, stream, tmp_path / "warm.jsonl",
                verdict_store=store,
            )
            assert store.stats()["writes"] == 0
        assert warm_reports == cold_reports
        assert warm_bytes == cold_bytes

    def test_warm_run_analyzes_nothing(self, ecosystem, union, stream,
                                       tmp_path):
        with VerdictStore(tmp_path / "vs") as store:
            analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                cache=VerdictCache(backing=store),
            )
        with VerdictStore(tmp_path / "vs") as store:
            _, stats = analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                cache=VerdictCache(backing=store),
            )
        assert stats.analyzed == 0
        assert stats.cache_hits == len(stream)

    def test_warm_fork_pool_matches_cold(self, ecosystem, union, stream,
                                         tmp_path):
        cold, _ = analyze_observations(
            stream, store=union, fetcher=ecosystem.aia_repo,
        )
        with VerdictStore(tmp_path / "vs") as store:
            analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                cache=VerdictCache(backing=store),
            )
        with VerdictStore(tmp_path / "vs") as store:
            warm, stats = analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                workers=2, oversubscribe=True,
                cache=VerdictCache(backing=store),
            )
        assert stats.analyzed == 0
        assert warm == cold

    def test_resume_after_store_truncation(self, ecosystem, stream,
                                           tmp_path):
        """A crash mid-write costs one verdict, never correctness."""
        campaign = Campaign(ecosystem)
        with VerdictStore(tmp_path / "vs") as cold_store:
            _, cold_reports, cold_bytes = self.run_journaled(
                campaign, stream, tmp_path / "cold.jsonl",
                verdict_store=cold_store,
            )
        segment = tmp_path / "vs" / "segments" / "000001.seg"
        data = segment.read_bytes()
        segment.write_bytes(data[: len(data) - 40])  # torn final record
        with VerdictStore(tmp_path / "vs") as store:
            assert store.recovered_records == 1
            _, warm_reports, warm_bytes = self.run_journaled(
                campaign, stream, tmp_path / "warm.jsonl",
                verdict_store=store,
            )
            # exactly the truncated verdict was recomputed and re-stored
            assert store.stats()["writes"] == 1
        assert warm_reports == cold_reports
        assert warm_bytes == cold_bytes


class TestDifferentialWarmStart:
    def run(self, ecosystem, store):
        harness = DifferentialHarness(
            ecosystem.registry, aia_fetcher=ecosystem.aia_repo
        )
        report = harness.run(
            ecosystem.observations(), at_time=ecosystem.config.now,
            verdict_store=store,
        )
        return [outcome.to_event() for outcome in report.outcomes]

    def test_warm_outcomes_match_cold(self, ecosystem, tmp_path):
        with VerdictStore(tmp_path / "vs") as store:
            cold = self.run(ecosystem, store)
            assert store.writes > 0
        with VerdictStore(tmp_path / "vs") as store:
            warm = self.run(ecosystem, store)
            assert store.stats()["writes"] == 0
            assert store.misses == 0
        assert json.dumps(warm, sort_keys=True) == \
            json.dumps(cold, sort_keys=True)

    def test_store_refuses_learning_cache(self, ecosystem, tmp_path):
        harness = DifferentialHarness(
            ecosystem.registry, aia_fetcher=ecosystem.aia_repo
        )
        with VerdictStore(tmp_path / "vs") as store:
            with pytest.raises(ValueError):
                harness.run(
                    ecosystem.observations(),
                    at_time=ecosystem.config.now,
                    observe_into_cache=True, verdict_store=store,
                )

    def test_capability_digest_pins_the_clients(self, ecosystem):
        harness = DifferentialHarness(
            ecosystem.registry, aia_fetcher=ecosystem.aia_repo
        )
        digest = harness.capability_digest()
        assert digest == harness.capability_digest()
        bare = DifferentialHarness(ecosystem.registry)
        assert bare.capability_digest() != digest
