"""JSONL observation persistence."""

import pytest

from repro.errors import EncodingError
from repro.measurement import (
    load_observations,
    observation_from_json,
    observation_to_json,
    save_observations,
)


class TestRoundTrip:
    def test_single_observation(self, chain):
        line = observation_to_json("rt.example", list(chain))
        domain, restored = observation_from_json(line)
        assert domain == "rt.example"
        assert restored == list(chain)

    def test_file_roundtrip(self, tmp_path, hierarchy, chain):
        observations = [
            ("a.example", list(chain)),
            ("b.example", [chain[0]]),
            ("c.example", [hierarchy.root.certificate]),
        ]
        path = tmp_path / "corpus.jsonl"
        assert save_observations(path, observations) == 3
        restored = load_observations(path)
        assert restored == observations

    def test_fingerprints_preserved(self, tmp_path, chain):
        path = tmp_path / "fp.jsonl"
        save_observations(path, [("fp.example", list(chain))])
        (_, restored), = load_observations(path)
        assert [c.fingerprint for c in restored] == [
            c.fingerprint for c in chain
        ]

    def test_ecosystem_corpus_roundtrip(self, tmp_path, small_ecosystem):
        observations = small_ecosystem.observations()[:50]
        path = tmp_path / "eco.jsonl"
        save_observations(path, observations)
        assert load_observations(path) == observations


class TestRobustness:
    def test_blank_and_comment_lines_tolerated(self, tmp_path, chain):
        path = tmp_path / "comments.jsonl"
        content = (
            "# a comment\n\n"
            + observation_to_json("x.example", [chain[0]])
            + "\n\n"
        )
        path.write_text(content)
        assert len(load_observations(path)) == 1

    def test_malformed_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(EncodingError, match="bad.jsonl:1"):
            load_observations(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "version.jsonl"
        path.write_text('{"v": 99, "domain": "x", "chain": []}\n')
        with pytest.raises(EncodingError, match="version"):
            load_observations(path)

    def test_missing_field_rejected(self):
        with pytest.raises(EncodingError):
            observation_from_json('{"v": 1, "domain": "x"}')

    def test_analysis_identical_after_reload(self, tmp_path, small_ecosystem):
        from repro.core import analyze_chain

        union = small_ecosystem.registry.union()
        observations = small_ecosystem.observations()[:30]
        path = tmp_path / "re.jsonl"
        save_observations(path, observations)
        for (d1, c1), (d2, c2) in zip(observations, load_observations(path)):
            before = analyze_chain(d1, c1, union, small_ecosystem.aia_repo)
            after = analyze_chain(d2, c2, union, small_ecosystem.aia_repo)
            assert before.compliant == after.compliant
            assert before.defect_summary == after.defect_summary
