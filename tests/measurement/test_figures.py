"""Figure regeneration: topology sketches and case-study outcomes."""

import pytest

from repro.measurement import (
    figure_1_trace,
    figure_2_sketches,
    figure_5_candidates,
    figure_case_outcomes,
    topology_sketch,
)


class TestTopologySketch:
    def test_compliant_sketch(self, hierarchy, leaf):
        sketch = topology_sketch("s.example", hierarchy.chain_for(leaf))
        assert sketch.labels == ("0", "1", "2")
        assert sketch.roles[0] == "leaf"
        assert sketch.paths == ("2->1->0",)
        assert "s.example" in sketch.render()

    def test_duplicate_labels_in_sketch(self, hierarchy, leaf):
        from repro.ca import malform

        chain = malform.duplicate_leaf(hierarchy.chain_for(leaf))
        sketch = topology_sketch("d.example", chain)
        # Labels are list positions (the paper's notation): the copy at
        # position 1 relabels to 0[1]; later certs keep their positions.
        assert sketch.labels == ("0", "0[1]", "2", "3")


class TestFigure2(object):
    def test_all_four_panels(self, small_ecosystem):
        sketches = figure_2_sketches(small_ecosystem)
        assert set(sketches) == {
            "a_compliant", "b_stale_leaves", "c_cross_signed",
            "d_foreign_chain",
        }

    def test_panel_b_shows_stale_leaves(self, small_ecosystem):
        sketch = figure_2_sketches(small_ecosystem)["b_stale_leaves"]
        assert sketch.roles.count("leaf") == 5

    def test_panel_c_has_two_paths(self, small_ecosystem):
        sketch = figure_2_sketches(small_ecosystem)["c_cross_signed"]
        assert len(sketch.paths) == 2

    def test_panel_d_relabels_duplicate(self, small_ecosystem):
        sketch = figure_2_sketches(small_ecosystem)["d_foreign_chain"]
        assert "4[1]" in sketch.labels  # the paper's exact relabelling


class TestCaseFigures:
    def test_figure3_gnutls_fails_on_length(self, small_ecosystem):
        data = figure_case_outcomes(small_ecosystem, "fig3_long_list")
        assert data["list_length"] == 17
        assert data["results"]["gnutls"] == "input_list_too_long"
        assert data["results"]["chrome"] == "ok"
        assert data["structures"]["chrome"] == "8->1->16->0"

    def test_figure4_backtracking_split(self, small_ecosystem):
        data = figure_case_outcomes(small_ecosystem, "fig4_backtracking")
        assert data["results"]["openssl"] == "untrusted_root"
        assert data["results"]["gnutls"] == "untrusted_root"
        assert data["results"]["cryptoapi"] == "ok"
        assert data["structures"]["cryptoapi"] == "4->3->2->0"
        # MbedTLS lands on the valid path only because it cannot reorder.
        assert data["results"]["mbedtls"] == "ok"

    def test_figure1_trace_shape(self, small_ecosystem):
        domain = small_ecosystem.deployments[0].domain
        trace = figure_1_trace(small_ecosystem, domain)
        assert set(trace) == {"domain", "client", "construction", "validation"}
        assert "structure" in trace["construction"]


class TestFigure5:
    def test_two_candidates_same_subject(self):
        candidates = figure_5_candidates()
        assert len(candidates) == 2
        assert candidates[0].subject == candidates[1].subject

    def test_most_recent_is_preferred(self):
        a, b = figure_5_candidates()
        assert a.preferred and not b.preferred
        assert a.validity.more_recent_than(b.validity)
