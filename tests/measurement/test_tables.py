"""Table regeneration: structure and internal consistency of each."""

import pytest

from repro.measurement import (
    TableContext,
    render_table_1,
    render_table_3,
    render_table_4,
    render_table_5,
    render_table_6,
    render_table_7,
    render_table_8,
    render_table_10,
    render_table_11,
    table_1,
    table_3,
    table_4,
    table_5,
    table_6,
    table_7,
    table_8,
    table_10,
    table_11,
)


@pytest.fixture(scope="module")
def ctx(small_ecosystem):
    return TableContext.build(small_ecosystem)


class TestStaticTables:
    def test_table1_fourteen_rows(self):
        rows = table_1()
        assert len(rows) == 14
        ours_only = [r for r in rows
                     if r["this_work"] == "yes" and r["bettertls"] == "no"]
        assert len(ours_only) == 8  # our novel coverage

    def test_table4_and_6_render(self):
        assert "Apache" in render_table_4()
        assert "GoGetSSL" in render_table_6()
        assert len(table_4()) == 5
        assert len(table_6()) == 5

    def test_table1_renders(self):
        assert "ORDER_REORGANIZATION" in render_table_1()


class TestCorpusTables:
    def test_table3_counts_sum_to_total(self, ctx):
        rows = table_3(ctx)
        assert sum(r["count"] for r in rows) == ctx.dataset.total
        assert rows[0]["placement"] == "correctly_placed_matched"
        assert rows[0]["percent"] > 85

    def test_table5_defect_counts(self, ctx):
        rows = table_5(ctx)
        total_row = rows[-1]
        assert total_row["type"] == "total"
        assert total_row["count"] == ctx.dataset.order_noncompliant
        # Defect rows may overlap, so their sum is >= the total.
        assert sum(r["count"] for r in rows[:-1]) >= total_row["count"]

    def test_table7_classes_partition_corpus(self, ctx):
        rows = table_7(ctx)
        assert sum(r["count"] for r in rows) == ctx.dataset.total
        shares = {r["type"]: r["percent"] for r in rows}
        assert shares["complete_without_root"] > shares["complete_with_root"]
        assert shares["incomplete"] < 5

    def test_table8_aia_dominates_store_choice(self, ctx):
        data = table_8(ctx)
        for store in data.values():
            assert store["aia_not_supported"] >= store["aia_supported"]
        # The legacy cohort makes no-AIA counts large for every store.
        assert data["mozilla"]["aia_not_supported"] > 0.1 * ctx.dataset.total

    def test_table10_overview_covers_noncompliant(self, ctx):
        rows = table_10(ctx)
        assert sum(rows["overview"].values()) == ctx.dataset.noncompliant

    def test_table10_azure_duplicate_leaf_zero(self, ctx):
        rows = table_10(ctx)
        assert rows["duplicate_leaf"].get("azure", 0) == 0

    def test_table11_totals_cover_corpus(self, ctx):
        data = table_11(ctx)
        assert sum(row["total"] for row in data.values()) == ctx.dataset.total

    def test_table11_lets_encrypt_cleanest_major_ca(self, ctx):
        data = table_11(ctx)
        le = data["lets-encrypt"]["noncompliant_rate"]
        assert le < data["digicert"]["noncompliant_rate"] or le < 2.5

    def test_renderers_produce_text(self, ctx):
        for renderer in (render_table_3, render_table_5, render_table_7,
                         render_table_8, render_table_10, render_table_11):
            text = renderer(ctx)
            assert isinstance(text, str) and len(text.splitlines()) >= 3


def test_render_all_bundles_every_table(ctx):
    from repro.measurement import render_all

    text = render_all(ctx)
    for marker in ("Table 1", "Table 3", "Table 4", "Table 5", "Table 6",
                   "Table 7", "Table 8", "Table 10", "Table 11"):
        assert marker in text
    assert "Table 9" not in text  # opt-in (slow ladder probe)
