"""The deduplicating pipeline: byte-parity with the sequential loop.

Every test here checks the same contract from a different angle: with
or without workers, with or without a journal, interrupted or not, the
pipeline's outputs — report list, aggregate tables, journal bytes,
metrics — are indistinguishable from the plain sequential
``Campaign.analyze`` loop.
"""

import json
import os

import pytest

from repro import obs
from repro.core import aggregate, analyze_chain
from repro.core.compliance import rebind_for_domain
from repro.measurement import Campaign
from repro.measurement.parallel import (
    OVERSUBSCRIBE_ENV,
    VerdictCache,
    analyze_observations,
    chain_key,
    resolve_workers,
)
from repro.obs import RunJournal
from repro.webpki import Ecosystem, EcosystemConfig


@pytest.fixture(scope="module")
def ecosystem():
    return Ecosystem.generate(EcosystemConfig(n_domains=140, seed=7))


@pytest.fixture(scope="module")
def union(ecosystem):
    return ecosystem.registry.union()


@pytest.fixture(scope="module")
def stream(ecosystem):
    """A scan-like stream with real redundancy.

    The union observations, then the first 60 again (the "both
    vantages, identical chain" pattern), then ten cross-domain repeats
    (another domain serving a chain already seen) to force the
    ``rebind_for_domain`` path.
    """
    base = ecosystem.observations()
    doubled = base + [(d, list(c)) for d, c in base[:60]]
    crossed = [
        (base[(i + 1) % len(base)][0], list(base[i][1]))
        for i in range(0, 30, 3)
    ]
    return doubled + crossed


@pytest.fixture(scope="module")
def sequential_reports(ecosystem, union, stream):
    return [
        analyze_chain(domain, chain, union, ecosystem.aia_repo)
        for domain, chain in stream
    ]


def aggregate_json(reports) -> str:
    return json.dumps(aggregate(reports).to_dict(), sort_keys=True)


class TestVerdictCache:
    def test_report_keyed_on_chain_and_store(self, ecosystem, union, stream):
        cache = VerdictCache()
        domain, chain = stream[0]
        key = chain_key(chain)
        report = analyze_chain(domain, chain, union, ecosystem.aia_repo)
        cache.store_report(key, union.digest(), report)
        assert cache.report_for(key, union.digest()) is report
        # same chain, different trust anchors: not the same verdict
        assert cache.report_for(key, "0" * 64) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_has_report_does_not_count(self, union, stream):
        cache = VerdictCache()
        key = chain_key(stream[0][1])
        assert not cache.has_report(key, union.digest())
        assert (cache.hits, cache.misses) == (0, 0)

    def test_outcome_cache_is_domain_sensitive(self, stream):
        cache = VerdictCache()
        key = chain_key(stream[0][1])
        cache.store_outcome("a.example", key, "outcome-a")
        assert cache.outcome_for("a.example", key) == "outcome-a"
        assert cache.outcome_for("b.example", key) is None
        assert (cache.outcome_hits, cache.outcome_misses) == (1, 1)
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = VerdictCache()
        assert cache.hit_rate == 0.0
        cache.hits, cache.misses = 3, 1
        assert cache.hit_rate == pytest.approx(0.75)


class TestResolveWorkers:
    def test_one_worker_is_in_process(self):
        assert resolve_workers(0) == (1, "in-process")
        assert resolve_workers(1) == (1, "in-process")

    def test_capped_at_core_count(self):
        effective, _ = resolve_workers(4096)
        assert effective <= (os.cpu_count() or 1)

    def test_oversubscribe_flag_lifts_the_cap(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        assert resolve_workers(3, oversubscribe=True) == (3, "fork-pool")

    def test_oversubscribe_env(self, monkeypatch):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        monkeypatch.setenv(OVERSUBSCRIBE_ENV, "1")
        effective, mode = resolve_workers(3)
        assert (effective, mode) == (3, "fork-pool")


class TestPipelineParity:
    def test_in_process_matches_sequential(
        self, ecosystem, union, stream, sequential_reports
    ):
        reports, stats = analyze_observations(
            stream, store=union, fetcher=ecosystem.aia_repo, workers=1,
        )
        assert reports == sequential_reports
        assert aggregate_json(reports) == aggregate_json(sequential_reports)
        assert stats.mode == "in-process"
        assert stats.observations == len(stream)
        assert stats.analyzed + stats.cache_hits == len(stream)
        assert stats.cache_hits > 0 and stats.hit_rate > 0.0

    def test_fork_pool_matches_sequential(
        self, ecosystem, union, stream, sequential_reports
    ):
        reports, stats = analyze_observations(
            stream, store=union, fetcher=ecosystem.aia_repo, workers=2,
            oversubscribe=True,
        )
        assert reports == sequential_reports
        assert aggregate_json(reports) == aggregate_json(sequential_reports)
        assert stats.mode == "fork-pool"
        assert stats.effective_workers == 2
        assert stats.analyzed == stats.unique_chains

    def test_cache_carries_across_calls(self, ecosystem, union, stream):
        cache = VerdictCache()
        analyze_observations(
            stream, store=union, fetcher=ecosystem.aia_repo, cache=cache,
        )
        reports, stats = analyze_observations(
            stream, store=union, fetcher=ecosystem.aia_repo, cache=cache,
        )
        assert stats.analyzed == 0
        assert stats.cache_hits == len(stream)

    def test_campaign_analyze_delegates(self, ecosystem, stream):
        campaign = Campaign(ecosystem)
        baseline, seq_reports = campaign.analyze(stream)
        report, reports = campaign.analyze(
            stream, workers=2, cache=VerdictCache(), oversubscribe=True,
        )
        assert report == baseline
        assert reports == seq_reports


class TestCrossDomainRebind:
    def test_rebind_equals_fresh_analysis(self, ecosystem, union, stream):
        base = ecosystem.observations()
        domain_a, chain = base[0]
        domain_b = base[1][0]
        cached = analyze_chain(domain_a, chain, union, ecosystem.aia_repo)
        rebound = rebind_for_domain(cached, domain_b, chain)
        fresh = analyze_chain(domain_b, chain, union, ecosystem.aia_repo)
        assert rebound == fresh
        assert rebound.to_json() == fresh.to_json()

    def test_same_domain_rebind_is_identity(self, ecosystem, union, stream):
        domain, chain = stream[0]
        report = analyze_chain(domain, chain, union, ecosystem.aia_repo)
        assert rebind_for_domain(report, domain, chain) is report


class TestJournalParity:
    def run_journaled(self, campaign, stream, path, **kwargs):
        with RunJournal.create(path, campaign.manifest()) as journal:
            report, reports = campaign.analyze(
                stream, journal=journal, **kwargs
            )
        return report, reports, path.read_bytes()

    def test_all_modes_write_identical_journals(
        self, ecosystem, stream, tmp_path
    ):
        campaign = Campaign(ecosystem)
        _, seq_reports, seq_bytes = self.run_journaled(
            campaign, stream, tmp_path / "seq.jsonl"
        )
        _, in_reports, in_bytes = self.run_journaled(
            campaign, stream, tmp_path / "inproc.jsonl",
            workers=1, cache=VerdictCache(),
        )
        _, pool_reports, pool_bytes = self.run_journaled(
            campaign, stream, tmp_path / "pool.jsonl",
            workers=2, cache=VerdictCache(), oversubscribe=True,
        )
        assert in_bytes == seq_bytes
        assert pool_bytes == seq_bytes
        assert in_reports == seq_reports
        assert pool_reports == seq_reports

    def test_crash_resume_is_byte_identical(
        self, ecosystem, stream, tmp_path
    ):
        campaign = Campaign(ecosystem)
        _, seq_reports, seq_bytes = self.run_journaled(
            campaign, stream, tmp_path / "uninterrupted.jsonl",
            workers=2, cache=VerdictCache(), oversubscribe=True,
        )

        path = tmp_path / "crashed.jsonl"
        with RunJournal.create(path, campaign.manifest()) as journal:
            campaign.analyze(
                stream[:80], journal=journal,
                workers=2, cache=VerdictCache(), oversubscribe=True,
            )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"verdict","domain":"crash.ex')

        with RunJournal.open(path, campaign.manifest()) as journal:
            _, reports = campaign.analyze(
                stream, journal=journal,
                workers=2, cache=VerdictCache(), oversubscribe=True,
            )
        assert reports == seq_reports
        assert path.read_bytes() == seq_bytes

    def test_rerun_appends_nothing(self, ecosystem, stream, tmp_path):
        campaign = Campaign(ecosystem)
        path = tmp_path / "run.jsonl"
        self.run_journaled(
            campaign, stream, path, workers=1, cache=VerdictCache()
        )
        before = path.read_bytes()
        with RunJournal.open(path, campaign.manifest()) as journal:
            _, stats = analyze_observations(
                stream, store=ecosystem.registry.union(),
                fetcher=ecosystem.aia_repo, journal=journal,
            )
        assert path.read_bytes() == before
        assert stats.analyzed == 0
        assert stats.resumed == len(stream)


class TestMetricsMerge:
    def totals(self, registry) -> dict[str, float]:
        snapshot = registry.snapshot()
        return {
            name: registry.total(name)
            for name, family in snapshot.items()
            if family["type"] == "counter"
            and name.split(".")[0] in ("campaign", "compliance")
        }

    def test_pool_counters_match_in_process(self, ecosystem, union, stream):
        obs.disable()
        with obs.instrumented() as (registry, _):
            analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo, workers=1,
            )
            in_process = self.totals(registry)
        with obs.instrumented() as (registry, _):
            analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo, workers=2,
                oversubscribe=True,
            )
            pooled = self.totals(registry)
        obs.disable()
        assert pooled == in_process
        assert in_process["campaign.chains_analyzed"] == len(stream)


class TestPhaseHistogramMerge:
    """Per-worker ``phase.*`` histograms fold losslessly back into the
    parent registry through ``merge_snapshot``."""

    def test_worker_phase_timers_merge_across_fork_pool(
        self, ecosystem, union, stream
    ):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        with obs.instrumented() as (registry, _):
            obs.catalogue.preregister(registry)
            _, stats = analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                workers=2, oversubscribe=True,
            )
            snapshot = registry.snapshot()
        assert stats.mode == "fork-pool"
        series = [
            s for s in snapshot["phase.wall_seconds"]["series"]
            if s["labels"].get("phase") == "analyze.worker"
        ]
        # Each worker span observes the scope once; every observation
        # survives the merge into the single parent series.
        assert len(series) == 1
        assert series[0]["count"] >= stats.effective_workers
        assert series[0]["sum"] >= 0.0
        cpu = [
            s for s in snapshot["phase.cpu_seconds"]["series"]
            if s["labels"].get("phase") == "analyze.worker"
        ]
        assert cpu[0]["count"] == series[0]["count"]

    def test_merge_preserves_bucket_counts(self):
        """Distinct registries with catalogue bounds fold exactly."""
        from repro.obs.probe import phase_scope

        parent = obs.MetricsRegistry()
        obs.catalogue.preregister(parent)
        totals = 0
        for _ in range(2):  # two "workers"
            worker = obs.MetricsRegistry()
            for _ in range(3):
                with phase_scope("analyze.worker", worker):
                    pass
            totals += 3
            parent.merge_snapshot(worker.snapshot())
        series = [
            s for s in parent.snapshot()["phase.wall_seconds"]["series"]
            if s["labels"].get("phase") == "analyze.worker"
        ]
        assert series[0]["count"] == totals
        assert sum(series[0]["buckets"].values()) == totals


class TestWorkerSpans:
    """Fork-pool workers trace for real; the parent adopts their spans.

    Regression: the pool used to pin workers to ``NULL_TRACER``, so a
    traced ``scan --workers 4`` silently lost every worker-side span.
    """

    def test_worker_spans_surface_in_parent_trace(
        self, ecosystem, union, stream
    ):
        with obs.instrumented() as (_, tracer):
            _, stats = analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                workers=2, oversubscribe=True,
            )
            events = tracer.to_chrome_trace()
        assert stats.mode == "fork-pool"
        worker_events = [e for e in events if e["name"] == "analyze.span"]
        assert worker_events  # the regression: these used to vanish
        # each submitted span rides its own Chrome-trace tid lane, so
        # worker timelines render side by side instead of stacked
        lanes = {e["tid"] for e in worker_events}
        assert len(lanes) == len(worker_events)
        assert 0 not in lanes  # lane 0 stays the parent's

    def test_worker_span_children_keep_the_lane(
        self, ecosystem, union, stream
    ):
        with obs.instrumented() as (_, tracer):
            analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                workers=2, oversubscribe=True,
            )
            roots = [s for s in tracer.roots() if s.name == "analyze.span"]
        assert roots
        for root in roots:
            for child in root.children:
                assert child.thread_id == root.thread_id

    def test_untraced_run_adopts_nothing(self, ecosystem, union, stream):
        with obs.instrumented(tracer=obs.NullTracer()) as (_, tracer):
            analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                workers=2, oversubscribe=True,
            )
        assert tracer.roots() == []


class TestLiveView:
    def run_with_live_view(self, ecosystem, union, stream, *, metrics=True):
        from repro.obs.server import LiveRegistryView, RunStatus

        status = RunStatus()
        if metrics:
            context = obs.instrumented()
        else:
            from contextlib import nullcontext
            context = nullcontext((obs.get_metrics(), obs.get_tracer()))
        with context as (registry, _):
            view = LiveRegistryView(registry)
            reports, stats = analyze_observations(
                stream, store=union, fetcher=ecosystem.aia_repo,
                workers=2, oversubscribe=True,
                status=status, live_view=view,
            )
        return reports, stats, status, view

    def test_results_unchanged_by_live_plumbing(
        self, ecosystem, union, stream, sequential_reports
    ):
        reports, stats, _, _ = self.run_with_live_view(
            ecosystem, union, stream
        )
        assert reports == sequential_reports
        assert aggregate_json(reports) == aggregate_json(sequential_reports)
        assert stats.mode == "fork-pool"

    def test_status_accounts_every_observation(
        self, ecosystem, union, stream
    ):
        _, _, status, _ = self.run_with_live_view(ecosystem, union, stream)
        snap = status.snapshot()
        assert snap["done"] == len(stream)

    def test_view_is_drained_and_cleared_at_the_end(
        self, ecosystem, union, stream
    ):
        _, _, _, view = self.run_with_live_view(ecosystem, union, stream)
        assert len(view) == 0  # every partial discarded or cleared

    def test_in_process_mode_advances_status_too(
        self, ecosystem, union, stream
    ):
        from repro.obs.server import RunStatus

        status = RunStatus()
        _, stats = analyze_observations(
            stream, store=union, fetcher=ecosystem.aia_repo, workers=1,
            status=status,
        )
        assert stats.mode == "in-process"
        assert status.snapshot()["done"] == len(stream)

    def test_null_metrics_run_skips_the_pipe(
        self, ecosystem, union, stream, sequential_reports
    ):
        reports, _, status, view = self.run_with_live_view(
            ecosystem, union, stream, metrics=False,
        )
        assert reports == sequential_reports
        assert status.snapshot()["done"] == len(stream)
        assert len(view) == 0
