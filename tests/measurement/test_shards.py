"""Sharded streaming campaigns: byte-parity with the unsharded pipeline.

The contract under test (``repro.measurement.shards``): for *any*
shard size the final :class:`DatasetReport`, the per-domain verdicts,
and a run report built from the journal are byte-identical to an
unsharded ``collect()`` + ``analyze()``; the journal holds the same
events with the same content, merely interleaved per shard; and a run
killed mid-shard resumes to the identical result.
"""

import json

import pytest

from repro.measurement import Campaign, shard_bounds
from repro.obs import RunJournal
from repro.obs.journal import read_journal
from repro.obs.report import build_report, render_report_text
from repro.webpki import Ecosystem, EcosystemConfig, VANTAGE_AU

N_DOMAINS = 60
SEED = 21


def fresh_campaign():
    ecosystem = Ecosystem.generate(
        EcosystemConfig(n_domains=N_DOMAINS, seed=SEED)
    )
    return Campaign(ecosystem, network=ecosystem.install())


def fingerprint(report):
    """The byte-parity criterion: the serialised dataset report."""
    return json.dumps(report.to_dict(), sort_keys=True)


def event_multiset(events, *, skip=("shard",)):
    return sorted(
        json.dumps(event, sort_keys=True)
        for event in events
        if event.get("type") not in skip
    )


@pytest.fixture(scope="module")
def flat(tmp_path_factory):
    """The unsharded reference run and its journal artifacts."""
    path = tmp_path_factory.mktemp("flat") / "run.jsonl"
    campaign = fresh_campaign()
    with RunJournal.open(path, campaign.manifest()) as journal:
        collection = campaign.collect(journal=journal)
        report, _ = campaign.analyze(
            collection.observations, journal=journal
        )
    manifest, events = read_journal(path)
    return {
        "collection": collection,
        "fingerprint": fingerprint(report),
        "events": events,
        "render": render_report_text(build_report(manifest, events)),
        "population": len(campaign.ecosystem.deployments),
    }


class TestShardBounds:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)

    def test_partitions_are_contiguous_and_cover(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)]

    def test_oversized_shard_is_one_shard(self):
        assert shard_bounds(10, 64) == [(0, 0, 10)]


class TestByteParity:
    """Singleton, prime, exact-population, and oversized shards all
    reproduce the unsharded run byte for byte."""

    @pytest.mark.parametrize("shard_size", [1, 7, "population", 10_000])
    def test_report_tables_and_journal_match(
        self, flat, shard_size, tmp_path
    ):
        if shard_size == "population":
            shard_size = flat["population"]
        campaign = fresh_campaign()
        path = tmp_path / "sharded.jsonl"
        with RunJournal.open(path, campaign.manifest()) as journal:
            result = campaign.run_sharded(shard_size, journal=journal)

        reference = flat["collection"]
        assert fingerprint(result.report) == flat["fingerprint"]
        assert result.total_observations == reference.total_observations
        assert result.unique_chains == reference.unique_chains
        assert (result.unique_certificates
                == reference.unique_certificates)
        assert result.reachable_counts == reference.reachable_counts
        # every (vantage, domain) pair finishes a scan on the healthy
        # reference world
        assert result.attempted_counts == {
            vantage: flat["population"]
            for vantage in result.attempted_counts
        }
        assert len(result.attempted_counts) == 2
        assert not result.degraded

        manifest, events = read_journal(path)
        # same events, same content — only the interleaving and the
        # shard boundary markers differ
        assert event_multiset(events) == event_multiset(flat["events"])
        # verdicts land in the *same order* (the union merge is
        # prefix-decomposable), not merely the same multiset
        assert ([e for e in events if e["type"] == "verdict"]
                == [e for e in flat["events"] if e["type"] == "verdict"])
        rendered = render_report_text(build_report(manifest, events))
        assert rendered == flat["render"]

    def test_shard_accounting_covers_population(self, flat, tmp_path):
        campaign = fresh_campaign()
        result = campaign.run_sharded(7)
        population = flat["population"]
        assert [s.index for s in result.shards] == list(
            range(len(result.shards))
        )
        assert result.shards[0].start == 0
        assert result.shards[-1].stop == population
        for prev, nxt in zip(result.shards, result.shards[1:]):
            assert prev.stop == nxt.start
        assert (sum(s.observations for s in result.shards)
                == result.total_observations)
        assert not any(s.resumed for s in result.shards)

    def test_parallel_shards_match_sequential(self, flat, tmp_path):
        """The probe/replay and verdict-cache pipelines nest inside
        shards without perturbing the output."""
        campaign = fresh_campaign()
        path = tmp_path / "parallel.jsonl"
        with RunJournal.open(path, campaign.manifest()) as journal:
            result = campaign.run_sharded(
                11, journal=journal, collect_workers=1, workers=1,
            )
        assert fingerprint(result.report) == flat["fingerprint"]
        _, events = read_journal(path)
        assert event_multiset(events) == event_multiset(flat["events"])

    def test_sharded_journal_validates(self, tmp_path):
        """`shard` boundary events satisfy the journal invariants —
        reopening a completed sharded journal must not raise."""
        campaign = fresh_campaign()
        path = tmp_path / "validate.jsonl"
        with RunJournal.open(path, campaign.manifest()) as journal:
            campaign.run_sharded(13, journal=journal)
        reopened = RunJournal.open(path, fresh_campaign().manifest())
        reopened.validate()
        reopened.close()


class TestResume:
    def _truncated(self, tmp_path, shard_size, *, keep_shards,
                   extra_lines):
        """A journal killed after ``keep_shards`` boundary events plus
        ``extra_lines`` records of the next shard."""
        campaign = fresh_campaign()
        path = tmp_path / "full.jsonl"
        with RunJournal.open(path, campaign.manifest()) as journal:
            campaign.run_sharded(shard_size, journal=journal)
        lines = path.read_text().splitlines(keepends=True)
        marks = [
            i for i, line in enumerate(lines)
            if json.loads(line).get("type") == "shard"
        ]
        cut = (marks[keep_shards - 1] if keep_shards
               else 0) + extra_lines
        partial = tmp_path / "partial.jsonl"
        partial.write_text("".join(lines[:cut + 1]))
        return partial

    @pytest.mark.parametrize(
        "keep_shards,extra_lines",
        [(4, 5),   # killed mid-shard: scans + some verdicts lost
         (3, 0),   # killed exactly on a shard boundary
         (0, 8)],  # killed inside the very first shard
    )
    def test_resume_is_byte_identical(self, flat, tmp_path,
                                      keep_shards, extra_lines):
        partial = self._truncated(
            tmp_path, 7, keep_shards=keep_shards,
            extra_lines=extra_lines,
        )
        campaign = fresh_campaign()
        with RunJournal.open(partial, campaign.manifest()) as journal:
            result = campaign.run_sharded(7, journal=journal)
        assert result.resumed_shards == keep_shards
        assert fingerprint(result.report) == flat["fingerprint"]
        reference = flat["collection"]
        assert result.total_observations == reference.total_observations
        assert result.unique_chains == reference.unique_chains
        assert (result.unique_certificates
                == reference.unique_certificates)
        assert result.reachable_counts == reference.reachable_counts
        # folded shards must count toward attempted too — the CLI's
        # reachability line reads these, and a resumed run that only
        # counted its re-run shards would print a partial denominator
        assert result.attempted_counts == {
            vantage: flat["population"]
            for vantage in result.attempted_counts
        }
        manifest, events = read_journal(partial)
        assert event_multiset(events) == event_multiset(flat["events"])
        rendered = render_report_text(build_report(manifest, events))
        assert rendered == flat["render"]

    def test_completed_run_resumes_without_new_events(self, tmp_path):
        campaign = fresh_campaign()
        path = tmp_path / "done.jsonl"
        with RunJournal.open(path, campaign.manifest()) as journal:
            first = campaign.run_sharded(9, journal=journal)
        again = fresh_campaign()
        with RunJournal.open(path, again.manifest()) as journal:
            second = again.run_sharded(9, journal=journal)
            appended = journal.events_written
        assert appended == 0
        assert second.resumed_shards == len(second.shards)
        assert fingerprint(second.report) == fingerprint(first.report)
        assert second.total_observations == first.total_observations


class TestDegradedVantage:
    """A hard vantage outage propagates through shards exactly as it
    does through the unsharded sweep.

    Only *deterministic* fault rules hold byte-parity across shard
    sizes — probabilistic plan faults draw from a plan-global RNG
    stream that is sensitive to global scan order (documented caveat
    in ``repro.measurement.shards``)."""

    def _campaign_with_outage(self):
        from repro.net import FaultPlan

        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=N_DOMAINS, seed=SEED)
        )
        network = ecosystem.install()
        network.set_fault_plan(
            FaultPlan().vantage_outage(VANTAGE_AU, start=0.0)
        )
        return Campaign(ecosystem, network=network)

    def test_outage_degrades_identically(self):
        reference = self._campaign_with_outage()
        collection = reference.collect(breaker_threshold=10)
        flat_report, _ = reference.analyze(collection.observations)
        assert collection.degraded_vantages == {
            VANTAGE_AU: "breaker_open"
        }

        sharded = self._campaign_with_outage()
        result = sharded.run_sharded(7, breaker_threshold=10)
        assert result.degraded_vantages == collection.degraded_vantages
        assert result.degraded
        # the surviving vantage's union — and with it every verdict —
        # is unaffected by how the dead vantage was chunked
        assert fingerprint(result.report) == fingerprint(flat_report)
        assert result.total_observations == collection.total_observations
        assert (result.reachable_counts[VANTAGE_AU]
                == collection.reachable_counts[VANTAGE_AU] == 0)

    def test_degradation_journaled_once(self, tmp_path):
        campaign = self._campaign_with_outage()
        path = tmp_path / "degraded.jsonl"
        with RunJournal.open(path, campaign.manifest()) as journal:
            campaign.run_sharded(7, journal=journal,
                                 breaker_threshold=10)
        _, events = read_journal(path)
        degradations = [e for e in events if e["type"] == "degradation"]
        assert degradations == [{
            "type": "degradation",
            "vantage": VANTAGE_AU,
            "reason": "breaker_open",
        }]
        collection = next(
            e for e in events if e["type"] == "collection"
        )
        assert collection["degraded"] is True
        assert collection["degraded_vantages"] == {
            VANTAGE_AU: "breaker_open"
        }


class PhaseRecorder:
    """A RunStatus stand-in that remembers every phase transition."""

    def __init__(self):
        self.phases = []
        self.advanced = 0

    def begin_phase(self, phase, total=0):
        self.phases.append((phase, total))

    def advance(self, n=1, *, ok=True):
        self.advanced += n

    def mark_degraded(self, vantage, reason):
        pass

    def finish(self):
        pass


class TestTelemetry:
    def test_status_walks_per_shard_phases(self):
        campaign = fresh_campaign()
        status = PhaseRecorder()
        result = campaign.run_sharded(40, status=status)
        names = [phase for phase, _ in status.phases]
        expected = []
        for shard in result.shards:
            expected.append(f"collect.shard.{shard.index}")
            expected.append(f"analyze.shard.{shard.index}")
        assert names == expected
        # collect phases count scans (domains × vantages), analyse
        # phases count union observations
        for (phase, total), shard in zip(
            status.phases[::2], result.shards
        ):
            assert total == (shard.stop - shard.start) * 2
        for (phase, total), shard in zip(
            status.phases[1::2], result.shards
        ):
            assert total == shard.observations

    def test_phase_metrics_are_shard_scoped(self):
        from repro import obs

        campaign = fresh_campaign()
        with obs.instrumented() as (registry, _):
            campaign.run_sharded(40)
            snapshot = registry.snapshot()
        phases = {
            series["labels"].get("phase")
            for series in snapshot["phase.wall_seconds"]["series"]
        }
        for expected in ("collect.shard.0", "analyze.shard.0",
                         "collect.shard.1", "analyze.shard.1",
                         "run.sharded"):
            assert expected in phases
