"""Formatting helpers."""

import pytest

from repro.measurement import cell, format_mapping_table, format_table, pct, shares


def test_pct():
    assert pct(1, 4) == 25.0
    assert pct(0, 0) == 0.0


def test_cell_formatting():
    assert cell(5974, 16952) == "5,974 (35.2%)"
    assert cell(1, 3, digits=2) == "1 (33.33%)"


def test_format_table_aligns_columns():
    text = format_table(("a", "bb"), [("x", "1"), ("longer", "22")])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert all(len(line) >= len("longer") for line in lines[1:])


def test_format_mapping_table():
    text = format_mapping_table("Title", {"k": "v"})
    assert text.startswith("Title\n")
    assert "k" in text and "v" in text


def test_shares_normalise():
    result = shares({"a": 3, "b": 1})
    assert result["a"] == pytest.approx(75.0)
    assert result["b"] == pytest.approx(25.0)


def test_shares_empty():
    assert shares({}) == {}
