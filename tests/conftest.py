"""Shared fixtures for the test suite.

Expensive fixtures (the capability environment, the small ecosystem)
are session-scoped; anything a test mutates gets function scope.
"""

from __future__ import annotations

import pytest

from repro.ca import build_hierarchy
from repro.chainbuilder.capabilities import CapabilityEnvironment
from repro.trust import RootStore, StaticAIARepository
from repro.webpki import Ecosystem, EcosystemConfig
from repro.x509 import utc

#: One instant used across the suite for validity checks.
NOW = utc(2024, 6, 15)


@pytest.fixture(scope="session")
def hierarchy():
    """Root -> I1 -> I2 ladder with AIA, deterministic keys."""
    return build_hierarchy(
        "Fixture", depth=2, key_seed_prefix="fixture",
        aia_base="http://aia.fixture.example",
    )


@pytest.fixture(scope="session")
def leaf(hierarchy):
    return hierarchy.issue_leaf(
        "fixture.example", not_before=utc(2024, 1, 1), days=365,
        key_seed=b"fixture/leaf",
    )


@pytest.fixture(scope="session")
def chain(hierarchy, leaf):
    """The compliant list: leaf, issuing intermediate, upper intermediate."""
    return hierarchy.chain_for(leaf)


@pytest.fixture(scope="session")
def store(hierarchy):
    return RootStore("fixture-store", [hierarchy.root.certificate])


@pytest.fixture(scope="session")
def aia_repo(hierarchy):
    repo = StaticAIARepository()
    for authority in hierarchy.authorities:
        if authority.aia_uri is not None:
            repo.publish(authority.aia_uri, authority.certificate)
    return repo


@pytest.fixture(scope="session")
def cap_env():
    """The Table 2 capability-test environment."""
    return CapabilityEnvironment.create(seed="tests")


@pytest.fixture(scope="session")
def small_ecosystem():
    """A 1,200-domain generated world shared by read-only tests."""
    return Ecosystem.generate(EcosystemConfig(n_domains=1_200, seed=99))


@pytest.fixture
def now():
    return NOW
