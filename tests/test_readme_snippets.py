"""The README's code snippets must actually run."""


def test_quickstart_snippet():
    from repro.webpki import Ecosystem, EcosystemConfig
    from repro.measurement import Campaign

    eco = Ecosystem.generate(EcosystemConfig(n_domains=300, seed=833))
    report, _ = Campaign(eco).analyze()
    assert 0.0 <= report.noncompliance_rate <= 100.0


def test_analyze_chain_snippet(hierarchy, leaf):
    from repro.ca import malform
    from repro.core import analyze_chain
    from repro.trust import RootStore

    chain = malform.reverse_intermediates(
        hierarchy.chain_for(leaf, include_root=True)
    )
    report = analyze_chain(
        "shop.example", chain, RootStore("mine", [hierarchy.root.certificate])
    )
    assert not report.compliant
    assert "order:reversed_sequences" in report.defect_summary


def test_client_model_snippet(hierarchy, leaf, store, now):
    from repro.chainbuilder import MBEDTLS, CHROME, ChainBuilder

    chain = hierarchy.chain_for(leaf)
    for policy in (MBEDTLS, CHROME):
        verdict = ChainBuilder(policy, store).build_and_validate(
            chain, domain="fixture.example", at_time=now
        )
        assert verdict.ok
        assert verdict.build.structure


def test_observability_snippet():
    from repro import obs
    from repro.measurement import Campaign
    from repro.webpki import Ecosystem, EcosystemConfig

    ecosystem = Ecosystem.generate(EcosystemConfig(n_domains=60, seed=833))
    with obs.instrumented() as (registry, tracer):
        campaign = Campaign(ecosystem)
        collection = campaign.collect()
        campaign.analyze(collection.observations)
    table = obs.render_metrics_table(registry.snapshot())
    assert "scan.attempts" in table and "compliance.verdict" in table
    assert "campaign.collect" in tracer.tree()
    assert not obs.enabled()


def test_report_snippet(tmp_path):
    from repro.cli import main

    journal = tmp_path / "run.jsonl"
    metrics = tmp_path / "m.json"
    report = tmp_path / "report.json"
    html = tmp_path / "report.html"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--journal", str(journal), "--metrics-out", str(metrics),
        "--report-out", str(report),
    ]) == 0
    assert main([
        "report", str(journal), "--metrics", str(metrics),
        "--out", str(html),
    ]) == 0
    assert "<html" in html.read_text()
    # two identical seeded runs diff clean: exit 0
    rerun = tmp_path / "rerun.jsonl"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--journal", str(rerun),
    ]) == 0
    assert main([
        "diff-runs", str(journal), str(rerun),
        "--threshold", "compliance.*=0",
    ]) == 0


def test_parallel_collect_snippet(tmp_path, monkeypatch):
    """The README's `--collect-workers 4 --workers 4` line, plus the
    byte-identical-to-sequential claim made right under it."""
    from repro.cli import main
    from repro.measurement.parallel import OVERSUBSCRIBE_ENV

    monkeypatch.setenv(OVERSUBSCRIBE_ENV, "1")  # force the pool on 1 core
    parallel = tmp_path / "parallel.jsonl"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--collect-workers", "4", "--workers", "4",
        "--journal", str(parallel),
    ]) == 0
    sequential = tmp_path / "sequential.jsonl"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--journal", str(sequential),
    ]) == 0
    assert parallel.read_bytes() == sequential.read_bytes()


def test_sharded_scan_snippet(tmp_path):
    """The README's `--shard-size` line, plus the byte-identical-report
    claim made right under it.

    Unlike the parallel-collect snippet the journals are *not* compared
    raw: a sharded journal interleaves events per shard and adds
    `shard` boundary markers. The contract is same events (same
    content, order interleaved), same verdict order, byte-identical
    rendered report.
    """
    import json

    from repro.cli import main

    sharded = tmp_path / "sharded.jsonl"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--shard-size", "25", "--journal", str(sharded),
    ]) == 0
    sequential = tmp_path / "sequential.jsonl"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--journal", str(sequential),
    ]) == 0

    from repro.obs.journal import read_journal
    from repro.obs.report import build_report, render_report_text

    manifest_a, events_a = read_journal(sharded)
    manifest_b, events_b = read_journal(sequential)
    assert [e for e in events_a if e["type"] == "verdict"] == [
        e for e in events_b if e["type"] == "verdict"
    ]
    multiset = lambda events: sorted(  # noqa: E731
        json.dumps(e, sort_keys=True)
        for e in events if e.get("type") != "shard"
    )
    assert multiset(events_a) == multiset(events_b)
    assert (render_report_text(build_report(manifest_a, events_a))
            == render_report_text(build_report(manifest_b, events_b)))


def test_cache_dir_snippet(tmp_path):
    """The README's `--cache-dir` lines, plus the warm-start-stays-
    byte-identical claim made right under them."""
    from repro.cli import main

    cache = tmp_path / "verdicts"
    cold = tmp_path / "cold.jsonl"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--cache-dir", str(cache), "--journal", str(cold),
    ]) == 0
    warm = tmp_path / "warm.jsonl"
    assert main([
        "scan", "--domains", "60", "--seed", "833", "--simulate-network",
        "--cache-dir", str(cache), "--journal", str(warm),
    ]) == 0
    verdict = lambda raw: [  # noqa: E731
        line for line in raw.read_bytes().splitlines()
        if line.startswith(b'{"type":"verdict"')
    ]
    assert verdict(warm) == verdict(cold)
    assert main(["cache", "stats", str(cache)]) == 0
    assert main(["cache", "verify", str(cache)]) == 0


def test_package_docstring_snippet():
    import repro

    assert repro.__version__
    assert "Chaos in the Chain" in repro.__doc__


def test_live_monitoring_snippet(tmp_path):
    """The README's --serve / --health / watch tour, in-process.

    The README backgrounds the scan and curls mid-run; here the same
    surfaces are exercised against a finished run's registry and
    journal — same endpoints, same rules, same dashboard.
    """
    import json
    import urllib.request

    from repro import obs
    from repro.cli import main

    journal = tmp_path / "run.jsonl"
    code = main([
        "scan", "--domains", "120", "--seed", "833",
        "--simulate-network", "--journal", str(journal),
        "--serve", "127.0.0.1:0",
        "--health", "scan.error_ratio<=0.05",
        "--health", "breaker.tripped=0",
    ])
    assert code == 0  # both SLOs hold on the reference world

    # the same endpoints, served from the run's journal artefacts
    registry = obs.MetricsRegistry()
    monitor = obs.HealthMonitor([
        obs.parse_health_rule("scan.error_ratio<=0.05"),
    ])
    with obs.TelemetryServer(
        registry, health=monitor, journal_path=journal
    ) as server:
        with urllib.request.urlopen(server.url + "/healthz") as response:
            assert response.status == 200
            assert json.loads(response.read())["ok"] is True
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.read().endswith(b"# EOF\n")

    # `repro-chain watch run.jsonl` over the finished journal
    assert main(["watch", str(journal), "--once"]) == 0
