"""Chain repair: every defect class gets fixed, with a changelog."""

import pytest

from repro.ca import build_cross_signed_pair, build_hierarchy, malform
from repro.core import (
    analyze_chain,
    repair_chain,
    verify_repair,
)
from repro.errors import ChainError
from repro.trust import RootStore, StaticAIARepository


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy(
        "RepairT", depth=2, key_seed_prefix="repairt",
        aia_base="http://aia.repairt.example",
    )
    leaf = h.issue_leaf("repairt.example")
    store = RootStore("repairt", [h.root.certificate])
    repo = StaticAIARepository()
    for authority in h.authorities:
        repo.publish(authority.aia_uri, authority.certificate)
    other = build_hierarchy("RepairO", depth=1, key_seed_prefix="repairo")
    return h, leaf, store, repo, other


def _is_compliant(domain, chain, store, repo):
    return analyze_chain(domain, chain, store, repo).compliant


class TestNoOp:
    def test_compliant_chain_untouched(self, world):
        h, leaf, store, repo, _ = world
        result = repair_chain(h.chain_for(leaf), domain="repairt.example",
                              store=store, fetcher=repo)
        assert not result.changed
        assert result.chain == h.chain_for(leaf)
        assert result.summary() == "already compliant; no changes"

    def test_empty_chain_rejected(self, world):
        _h, _leaf, store, repo, _ = world
        with pytest.raises(ChainError):
            repair_chain([], store=store)

    def test_ca_only_list_rejected(self, world):
        h, _leaf, store, repo, _ = world
        with pytest.raises(ChainError):
            repair_chain([h.root.certificate, h.intermediates[0].certificate],
                         store=store)


class TestDefectRepairs:
    def test_reversed_chain_reordered(self, world):
        h, leaf, store, repo, _ = world
        broken = malform.reverse_intermediates(
            h.chain_for(leaf, include_root=True)
        )
        result = repair_chain(broken, domain="repairt.example",
                              store=store, fetcher=repo)
        assert verify_repair(broken, result, domain="repairt.example")
        assert _is_compliant("repairt.example", result.chain, store, repo)
        assert any(a.kind == "reordered" for a in result.actions)

    def test_duplicates_removed(self, world):
        h, leaf, store, repo, _ = world
        broken = malform.duplicate_leaf(h.chain_for(leaf), copies=3)
        result = repair_chain(broken, domain="repairt.example",
                              store=store, fetcher=repo)
        assert len(result.chain) == 3
        assert sum(a.kind == "removed_duplicate" for a in result.actions) == 3

    def test_irrelevant_removed(self, world):
        h, leaf, store, repo, other = world
        broken = malform.insert_irrelevant(
            h.chain_for(leaf),
            [other.root.certificate, other.intermediates[0].certificate],
        )
        result = repair_chain(broken, domain="repairt.example",
                              store=store, fetcher=repo)
        assert _is_compliant("repairt.example", result.chain, store, repo)
        assert sum(a.kind == "removed_irrelevant" for a in result.actions) == 2

    def test_stale_leaves_removed_right_leaf_kept(self, world):
        h, leaf, store, repo, _ = world
        stale = [h.issue_leaf("repairt.example") for _ in range(2)]
        broken = malform.append_stale_leaves(h.chain_for(leaf), stale)
        result = repair_chain(broken, domain="repairt.example",
                              store=store, fetcher=repo)
        assert result.chain[0] is broken[0]
        assert all(s not in result.chain for s in stale)

    def test_misplaced_leaf_fronted(self, world):
        h, leaf, store, repo, _ = world
        broken = malform.move_leaf(h.chain_for(leaf), 2)
        result = repair_chain(broken, domain="repairt.example",
                              store=store, fetcher=repo)
        assert result.chain[0].matches_domain("repairt.example")
        assert any(a.kind == "moved_leaf" for a in result.actions)

    def test_missing_intermediate_fetched(self, world):
        h, leaf, store, repo, _ = world
        result = repair_chain([leaf], domain="repairt.example",
                              store=store, fetcher=repo)
        assert result.complete
        assert len(result.chain) == 3
        assert any(a.kind == "fetched_missing" for a in result.actions)
        assert _is_compliant("repairt.example", result.chain, store, repo)

    def test_missing_intermediate_without_fetcher(self, world):
        h, leaf, store, _repo, _ = world
        result = repair_chain([leaf], domain="repairt.example", store=store)
        assert not result.complete

    def test_root_dropped_by_default(self, world):
        h, leaf, store, repo, _ = world
        result = repair_chain(h.chain_for(leaf, include_root=True),
                              domain="repairt.example",
                              store=store, fetcher=repo)
        assert not any(c.is_self_signed for c in result.chain)
        assert any(a.kind == "dropped_root" for a in result.actions)

    def test_root_kept_on_request(self, world):
        h, leaf, store, repo, _ = world
        result = repair_chain(h.chain_for(leaf, include_root=True),
                              domain="repairt.example",
                              store=store, fetcher=repo, include_root=True)
        assert result.chain[-1].is_self_signed

    def test_everything_at_once(self, world):
        h, leaf, store, repo, other = world
        broken = malform.duplicate_leaf(
            malform.insert_irrelevant(
                malform.reverse_intermediates(
                    h.chain_for(leaf, include_root=True)
                ),
                [other.root.certificate],
            )
        )
        result = repair_chain(broken, domain="repairt.example",
                              store=store, fetcher=repo)
        assert verify_repair(broken, result, domain="repairt.example")
        assert _is_compliant("repairt.example", result.chain, store, repo)
        kinds = {a.kind for a in result.actions}
        assert {"removed_duplicate", "removed_irrelevant",
                "reordered"} <= kinds


class TestPathChoice:
    def test_anchored_path_preferred(self, world):
        _h, _leaf, _store, _repo, _ = world
        primary, legacy, cross = build_cross_signed_pair(
            "RepairXS", key_seed_prefix="repair-xs"
        )
        leaf = primary.issue_leaf("rxs.example")
        # Only the legacy root is trusted: the cross path must win.
        store = RootStore("rxs", [legacy.root.certificate])
        chain = [leaf, primary.intermediates[0].certificate,
                 primary.root.certificate, cross]
        result = repair_chain(chain, domain="rxs.example", store=store)
        assert cross in result.chain
        assert primary.root.certificate not in result.chain
        assert any(a.kind == "chose_path" for a in result.actions)

    def test_repair_is_idempotent(self, world):
        h, leaf, store, repo, _ = world
        broken = malform.reverse_intermediates(h.chain_for(leaf))
        once = repair_chain(broken, domain="repairt.example",
                            store=store, fetcher=repo)
        twice = repair_chain(once.chain, domain="repairt.example",
                             store=store, fetcher=repo)
        assert not twice.changed
        assert twice.chain == once.chain


class TestWithoutStore:
    def test_longest_path_chosen_without_store(self, world):
        """With no trust anchors to rank by, the repair prefers the
        longest (most complete) candidate path."""
        from repro.ca import build_cross_signed_pair

        primary, legacy, cross = build_cross_signed_pair(
            "RepairNS", key_seed_prefix="repair-ns"
        )
        leaf = primary.issue_leaf("rns.example")
        chain = [leaf, primary.intermediates[0].certificate,
                 primary.root.certificate, cross, legacy.root.certificate]
        result = repair_chain(chain, domain="rns.example")
        # Both paths have length 4 post-leaf... the chosen one is
        # deterministic and single.
        from repro.core import ChainTopology

        assert ChainTopology(result.chain or [leaf]).is_single_compliant_path()

    def test_incomplete_flag_without_store_or_fetcher(self, world):
        h, leaf, _store, _repo, _ = world
        result = repair_chain([leaf, h.chain_for(leaf)[1]],
                              domain="repairt.example")
        assert not result.complete


class TestVerifyRepair:
    def test_rejects_empty_result(self, world):
        from repro.core import RepairResult

        assert not verify_repair([], RepairResult(chain=[]))

    def test_rejects_wrong_domain(self, world):
        h, leaf, store, repo, _ = world
        result = repair_chain(h.chain_for(leaf), domain="repairt.example",
                              store=store, fetcher=repo)
        assert not verify_repair(h.chain_for(leaf), result,
                                 domain="unrelated.example")
