"""Issuance-order analysis: the four Table 5 defect classes."""

import pytest

from repro.ca import build_cross_signed_pair, build_hierarchy, malform
from repro.core import ChainTopology, OrderDefect, analyze_order


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("OrderT", depth=2, key_seed_prefix="ordert")
    leaf = h.issue_leaf("ordert.example")
    other = build_hierarchy("OrderO", depth=1, key_seed_prefix="ordero")
    return h, leaf, other


class TestCompliant:
    def test_clean_chain_compliant(self, world):
        h, leaf, _ = world
        analysis = analyze_order(h.chain_for(leaf))
        assert analysis.compliant
        assert analysis.defects == frozenset()
        assert analysis.path_count == 1

    def test_clean_chain_with_root_compliant(self, world):
        h, leaf, _ = world
        assert analyze_order(h.chain_for(leaf, include_root=True)).compliant


class TestDefectClasses:
    def test_duplicates(self, world):
        h, leaf, _ = world
        analysis = analyze_order(malform.duplicate_leaf(h.chain_for(leaf)))
        assert analysis.has(OrderDefect.DUPLICATE_CERTIFICATES)
        assert analysis.duplicate_roles == frozenset({"leaf"})
        assert not analysis.compliant

    def test_duplicate_root_role(self, world):
        h, leaf, _ = world
        chain = h.chain_for(leaf, include_root=True)
        analysis = analyze_order(malform.duplicate_certificate(chain, 3))
        assert "root" in analysis.duplicate_roles

    def test_irrelevant(self, world):
        h, leaf, other = world
        chain = malform.insert_irrelevant(
            h.chain_for(leaf), [other.root.certificate]
        )
        analysis = analyze_order(chain)
        assert analysis.has(OrderDefect.IRRELEVANT_CERTIFICATES)
        assert analysis.irrelevant_count == 1

    def test_reversed(self, world):
        h, leaf, _ = world
        chain = malform.reverse_intermediates(h.chain_for(leaf, include_root=True))
        analysis = analyze_order(chain)
        assert analysis.has(OrderDefect.REVERSED_SEQUENCES)
        assert analysis.reversed_any and analysis.reversed_all
        assert analysis.path_structures == ("1->2->3->0",)

    def test_multiple_paths(self):
        primary, legacy, cross = build_cross_signed_pair(
            "OrderXS", key_seed_prefix="order-xs"
        )
        leaf = primary.issue_leaf("oxs.example")
        chain = [leaf, primary.intermediates[0].certificate, cross,
                 primary.root.certificate, legacy.root.certificate]
        analysis = analyze_order(chain)
        assert analysis.has(OrderDefect.MULTIPLE_PATHS)
        assert analysis.path_count == 2

    def test_combined_defects(self, world):
        h, leaf, other = world
        chain = malform.duplicate_leaf(
            malform.insert_irrelevant(
                malform.reverse_intermediates(
                    h.chain_for(leaf, include_root=True)
                ),
                [other.root.certificate],
            )
        )
        analysis = analyze_order(chain)
        assert analysis.defects >= {
            OrderDefect.DUPLICATE_CERTIFICATES,
            OrderDefect.IRRELEVANT_CERTIFICATES,
            OrderDefect.REVERSED_SEQUENCES,
        }


class TestSharedTopology:
    def test_prebuilt_topology_reused(self, world):
        h, leaf, _ = world
        chain = h.chain_for(leaf)
        topo = ChainTopology(chain)
        analysis = analyze_order(chain, topology=topo)
        assert analysis.compliant

    def test_incomplete_chain_is_order_compliant(self, world):
        h, leaf, _ = world
        # Order and completeness are orthogonal: a truncated but ordered
        # list has compliant ordering.
        chain = h.chain_for(leaf)[:2]
        assert analyze_order(chain).compliant
