"""Whole-chain verdicts and dataset aggregation."""

import pytest

from repro.ca import build_hierarchy, malform
from repro.core import (
    CompletenessClass,
    LeafPlacement,
    OrderDefect,
    aggregate,
    aggregate_by,
    analyze_chain,
)
from repro.trust import RootStore, StaticAIARepository


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy(
        "CompR", depth=2, key_seed_prefix="compr",
        aia_base="http://aia.compr.example",
    )
    leaf = h.issue_leaf("compr.example")
    store = RootStore("compr", [h.root.certificate])
    repo = StaticAIARepository()
    for authority in h.authorities:
        repo.publish(authority.aia_uri, authority.certificate)
    return h, leaf, store, repo


class TestChainReport:
    def test_compliant_chain(self, world):
        h, leaf, store, repo = world
        report = analyze_chain("compr.example", h.chain_for(leaf), store, repo)
        assert report.compliant
        assert report.defect_summary == ()
        assert report.chain_length == 3

    def test_reversed_chain_summary(self, world):
        h, leaf, store, repo = world
        chain = malform.reverse_intermediates(h.chain_for(leaf, include_root=True))
        report = analyze_chain("compr.example", chain, store, repo)
        assert not report.compliant
        assert "order:reversed_sequences" in report.defect_summary

    def test_incomplete_chain_summary(self, world):
        h, leaf, store, repo = world
        report = analyze_chain("compr.example", [leaf], store, repo)
        assert "completeness:incomplete" in report.defect_summary

    def test_misplaced_leaf_summary(self, world):
        h, leaf, store, repo = world
        chain = malform.move_leaf(h.chain_for(leaf, include_root=True), 2)
        report = analyze_chain("compr.example", chain, store, repo)
        assert any(d.startswith("leaf:") for d in report.defect_summary)

    def test_empty_chain_rejected(self, world):
        _h, _leaf, store, repo = world
        with pytest.raises(ValueError):
            analyze_chain("x.example", [], store, repo)


class TestAggregation:
    @pytest.fixture(scope="class")
    def dataset(self, world):
        h, leaf, store, repo = world
        chains = {
            "good-1.example": h.chain_for(leaf),
            "good-2.example": h.chain_for(leaf, include_root=True),
            "reversed.example": malform.reverse_intermediates(
                h.chain_for(leaf, include_root=True)
            ),
            "duplicated.example": malform.duplicate_leaf(h.chain_for(leaf)),
            "incomplete.example": [leaf],
        }
        reports = [
            analyze_chain(domain, chain, store, repo)
            for domain, chain in chains.items()
        ]
        return aggregate(reports), reports

    def test_totals(self, dataset):
        ds, _ = dataset
        assert ds.total == 5
        assert ds.noncompliant == 3
        assert ds.noncompliance_rate == pytest.approx(60.0)

    def test_order_table(self, dataset):
        ds, _ = dataset
        table = ds.order_table()
        assert table[OrderDefect.REVERSED_SEQUENCES][0] == 1
        assert table[OrderDefect.DUPLICATE_CERTIFICATES][0] == 1

    def test_completeness_table(self, dataset):
        ds, _ = dataset
        table = ds.completeness_table()
        assert table[CompletenessClass.INCOMPLETE][0] == 1
        assert table[CompletenessClass.COMPLETE_WITH_ROOT][0] == 2

    def test_leaf_table(self, dataset):
        ds, _ = dataset
        table = ds.leaf_table()
        # The fixture leaf names compr.example, so every scanned domain
        # sees a hostlike-but-mismatched first certificate.
        mismatched = table[LeafPlacement.CORRECTLY_PLACED_MISMATCHED]
        assert mismatched[0] == 5
        assert sum(count for count, _ in table.values()) == 5

    def test_noncompliant_domains_recorded(self, dataset):
        ds, _ = dataset
        assert "reversed.example" in ds.noncompliant_domains
        assert "good-1.example" not in ds.noncompliant_domains

    def test_missing_one_counter(self, dataset):
        ds, _ = dataset
        assert ds.incomplete_total == 1
        assert ds.aia_fixable_incomplete == 1

    def test_aggregate_by_groups(self, dataset):
        _, reports = dataset
        groups = aggregate_by(
            reports, lambda r: "bad" if not r.compliant else "good"
        )
        assert groups["bad"].total == 3
        assert groups["good"].total == 2

    def test_empty_dataset_rates_are_zero(self):
        from repro.core import DatasetReport

        ds = DatasetReport()
        assert ds.noncompliance_rate == 0.0
        assert ds.pct(0) == 0.0


class TestJsonSerialization:
    """``to_json`` is a hand-rolled fast path; it must stay
    byte-identical to the generic compact encoding of ``to_dict`` —
    the journal's byte-parity guarantee depends on it."""

    def compact(self, report) -> str:
        import json

        return json.dumps(report.to_dict(), separators=(",", ":"))

    def test_matches_generic_encoder(self, world):
        h, leaf, store, repo = world
        chains = [
            h.chain_for(leaf),
            h.chain_for(leaf, include_root=True),
            malform.reverse_intermediates(h.chain_for(leaf,
                                                      include_root=True)),
            malform.duplicate_leaf(h.chain_for(leaf)),
            [leaf],
        ]
        for chain in chains:
            report = analyze_chain("compr.example", chain, store, repo)
            assert report.to_json() == self.compact(report)

    def test_exotic_evidence_still_matches(self, world):
        """Evidence the fast path cannot shortcut: escapes, unicode,
        non-string detail values."""
        import dataclasses

        from repro.obs.evidence import Evidence

        h, leaf, store, repo = world
        report = analyze_chain("compr.example", h.chain_for(leaf), store,
                               repo)
        exotic = Evidence(
            rule_id='R"2.weird\\rule',
            verdict="info",
            summary="ünïcode summary with \"quotes\" and \ttabs",
            certs=("aa" * 32, 'odd"cert'),
            edges=((0, 1), (1, 2)),
            details={
                "int": 3,
                "bool": True,
                "none": None,
                "float": 1.5,
                "nested": {"list": [1, "two", None]},
                "escaped": 'va"lue\\',
            },
        )
        order = dataclasses.replace(
            report.order, evidence=report.order.evidence + (exotic,)
        )
        weird = dataclasses.replace(
            report, domain="dömaïn.example", order=order
        )
        assert weird.to_json() == self.compact(weird)

    def test_ensure_ascii_escapes_match(self, world):
        h, leaf, store, repo = world
        report = analyze_chain("ünïcode.example", h.chain_for(leaf), store,
                               repo)
        assert report.to_json() == self.compact(report)
