"""The issuance-relation predicate: the paper's three criteria."""

import pytest

from repro.ca import next_serial
from repro.core import (
    DEFAULT_POLICY,
    RelationPolicy,
    STRUCTURAL_POLICY,
    evaluate,
    find_issuers,
    issued,
)
from repro.x509 import (
    CertificateBuilder,
    Name,
    SimulatedKeyPair,
    SubjectKeyIdentifier,
    Validity,
    utc,
)

ISSUER_NAME = Name.build(common_name="Relation CA")
WINDOW = Validity(utc(2024, 1, 1), utc(2026, 1, 1))


def _issuer_cert(key, *, subject=ISSUER_NAME, skid=True):
    builder = (
        CertificateBuilder()
        .subject_name(subject)
        .issuer_name(subject)
        .serial_number(next_serial())
        .validity(WINDOW)
        .public_key(key.public_key)
        .ca()
    )
    if skid:
        builder.add_extension(SubjectKeyIdentifier(key.public_key.key_id))
    return builder.sign(key)


def _subject_cert(signer_key, *, issuer=ISSUER_NAME, akid=None):
    key = SimulatedKeyPair()
    builder = (
        CertificateBuilder()
        .subject_name(Name.build(common_name="relation-leaf.example"))
        .issuer_name(issuer)
        .serial_number(next_serial())
        .validity(WINDOW)
        .public_key(key.public_key)
        .end_entity()
    )
    if akid is not None:
        builder.akid(akid)
    return builder.sign(signer_key)


class TestCriteria:
    def test_all_three_criteria_hold(self):
        key = SimulatedKeyPair(seed=b"rel1")
        issuer = _issuer_cert(key)
        subject = _subject_cert(key, akid=key.public_key.key_id)
        evidence = evaluate(issuer, subject)
        assert evidence.signature_valid
        assert evidence.name_match
        assert evidence.kid_match is True
        assert evidence.holds

    def test_signature_required_by_default(self):
        key, wrong = SimulatedKeyPair(seed=b"rel2"), SimulatedKeyPair()
        issuer = _issuer_cert(key)
        subject = _subject_cert(wrong, akid=key.public_key.key_id)
        assert not issued(issuer, subject)

    def test_name_mismatch_with_kid_match_still_holds(self):
        # Criterion 2 OR criterion 3 suffices alongside the signature.
        key = SimulatedKeyPair(seed=b"rel3")
        issuer = _issuer_cert(key)
        subject = _subject_cert(
            key, issuer=Name.build(common_name="Somebody Else"),
            akid=key.public_key.key_id,
        )
        assert issued(issuer, subject)

    def test_kid_mismatch_with_name_match_still_holds(self):
        key = SimulatedKeyPair(seed=b"rel4")
        issuer = _issuer_cert(key)
        subject = _subject_cert(key, akid=b"\x00" * 20)
        evidence = evaluate(issuer, subject)
        assert evidence.kid_match is False
        assert evidence.holds

    def test_both_identifiers_failing_breaks_relation(self):
        key = SimulatedKeyPair(seed=b"rel5")
        issuer = _issuer_cert(key)
        subject = _subject_cert(
            key, issuer=Name.build(common_name="Else"), akid=b"\x00" * 20
        )
        assert not issued(issuer, subject)

    def test_absent_kid_treated_as_unknown_not_mismatch(self):
        key = SimulatedKeyPair(seed=b"rel6")
        issuer = _issuer_cert(key, skid=False)
        subject = _subject_cert(key, akid=key.public_key.key_id)
        evidence = evaluate(issuer, subject)
        assert evidence.kid_match is None
        assert evidence.holds  # name still matches

    def test_empty_issuer_subject_never_name_matches(self):
        from repro.x509 import EMPTY_NAME

        key = SimulatedKeyPair(seed=b"rel7")
        issuer = _issuer_cert(key, subject=EMPTY_NAME, skid=False)
        subject = _subject_cert(key, issuer=EMPTY_NAME)
        assert not evaluate(issuer, subject).name_match


class TestPolicies:
    def test_structural_policy_ignores_signature(self):
        key, wrong = SimulatedKeyPair(seed=b"rel8"), SimulatedKeyPair()
        issuer = _issuer_cert(key)
        subject = _subject_cert(wrong)  # signed by the wrong key
        assert not issued(issuer, subject)
        assert issued(issuer, subject, STRUCTURAL_POLICY)

    def test_kid_only_policy(self):
        key = SimulatedKeyPair(seed=b"rel9")
        issuer = _issuer_cert(key)
        subject = _subject_cert(
            key, issuer=Name.build(common_name="Else"),
            akid=key.public_key.key_id,
        )
        kid_only = RelationPolicy(use_name_match=False)
        assert issued(issuer, subject, kid_only)

    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError):
            RelationPolicy(
                require_signature=False, use_name_match=False,
                use_kid_match=False,
            )


class TestFindIssuers:
    def test_finds_in_candidate_order(self, chain, hierarchy):
        leaf = chain[0]
        candidates = [hierarchy.root.certificate, chain[1], chain[2]]
        found = find_issuers(leaf, candidates)
        assert found == [chain[1]]

    def test_self_never_own_issuer(self, hierarchy):
        root = hierarchy.root.certificate
        assert find_issuers(root, [root]) == []

    def test_duplicate_instances_excluded_by_fingerprint(self, chain):
        import copy

        leaf = chain[0]
        clone = copy.deepcopy(leaf)
        assert find_issuers(leaf, [clone]) == []


class TestStructuralPrefilterEquivalence:
    """The no-signature prefilter inside ``find_issuers`` is invisible.

    ``find_issuers`` rejects candidates that fail both the name and
    KID criteria before paying for the signature check.  Over a fuzzed
    corpus of mutated chains (reordered, truncated, wrong-signature,
    stripped-extension mutants) the result must equal the brute-force
    ``issued`` filter for every policy combination — the prefilter may
    only skip work, never change an answer.
    """

    POLICIES = (
        DEFAULT_POLICY,
        RelationPolicy(use_kid_match=False),
        RelationPolicy(use_name_match=False),
        RelationPolicy(use_name_match=False, use_kid_match=False),
        STRUCTURAL_POLICY,
        RelationPolicy(require_signature=False, use_name_match=False),
    )

    @pytest.fixture(scope="class")
    def corpus(self):
        import random

        from repro.ca import build_hierarchy
        from repro.chainbuilder import ChainFuzzer, DifferentialHarness
        from repro.trust import RootStoreRegistry, StaticAIARepository

        h = build_hierarchy(
            "RelFuzz", depth=2, key_seed_prefix="relfuzz",
            aia_base="http://aia.relfuzz.example",
        )
        registry = RootStoreRegistry()
        registry.add_everywhere(h.root.certificate)
        repo = StaticAIARepository()
        for authority in h.authorities:
            repo.publish(authority.aia_uri, authority.certificate)
        seeds = []
        for index in range(5):
            leaf = h.issue_leaf(f"relfuzz{index}.example",
                                not_before=utc(2024, 1, 1), days=365,
                                key_seed=f"relfuzz/{index}".encode())
            seeds.append((f"relfuzz{index}.example", h.chain_for(leaf)))
        fuzzer = ChainFuzzer(
            DifferentialHarness(registry, aia_fetcher=repo), seeds,
            rng=random.Random(13),
        )
        chains = [list(chain) for _, chain in seeds]
        for index in range(60):
            mutant, _ = fuzzer.mutate(
                list(seeds[index % len(seeds)][1]),
                depth=1 + index % 3,
            )
            if mutant:
                chains.append(mutant)
        return chains

    def test_fuzzed_corpus_matches_brute_force(self, corpus):
        pool = [cert for chain in corpus for cert in chain]
        checked = 0
        for chain in corpus:
            for subject in chain:
                for policy in self.POLICIES:
                    expected = [
                        candidate for candidate in pool
                        if candidate is not subject
                        and candidate.fingerprint != subject.fingerprint
                        and issued(candidate, subject, policy)
                    ]
                    assert find_issuers(subject, pool, policy) == expected
                    checked += 1
        assert checked > 100  # the corpus really exercised the filter
