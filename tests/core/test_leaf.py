"""Leaf placement classification: the five Table 3 classes."""

import pytest

from repro.ca import build_hierarchy, malform, next_serial
from repro.core import LeafPlacement, classify_leaf_placement
from repro.x509 import (
    CertificateBuilder,
    Name,
    SimulatedKeyPair,
    Validity,
    utc,
)


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("LeafT", depth=1, key_seed_prefix="leaft")
    leaf = h.issue_leaf("leaft.example")
    return h, leaf, h.chain_for(leaf)


def _appliance_cert(cn="Plesk"):
    key = SimulatedKeyPair()
    return (
        CertificateBuilder()
        .subject_name(Name.build(common_name=cn))
        .issuer_name(Name.build(common_name=cn))
        .serial_number(next_serial())
        .validity(Validity(utc(2024, 1, 1), utc(2030, 1, 1)))
        .public_key(key.public_key)
        .end_entity()
        .sign(key)
    )


class TestClasses:
    def test_correctly_placed_matched(self, world):
        _h, _leaf, chain = world
        analysis = classify_leaf_placement("leaft.example", chain)
        assert analysis.placement is LeafPlacement.CORRECTLY_PLACED_MATCHED
        assert analysis.deciding_index == 0
        assert analysis.compliant

    def test_correctly_placed_mismatched(self, world):
        _h, _leaf, chain = world
        analysis = classify_leaf_placement("other.example", chain)
        assert analysis.placement is LeafPlacement.CORRECTLY_PLACED_MISMATCHED
        assert analysis.compliant

    def test_incorrectly_placed_matched(self, world):
        _h, _leaf, chain = world
        moved = malform.move_leaf(chain, 1)
        analysis = classify_leaf_placement("leaft.example", moved)
        assert analysis.placement is LeafPlacement.INCORRECTLY_PLACED_MATCHED
        assert analysis.deciding_index == 1
        assert not analysis.compliant

    def test_incorrectly_placed_mismatched(self, world):
        h, _leaf, _chain = world
        # Appliance cert first, host-formatted cert later, neither
        # matching the scanned domain — the mot.gov.ps single case.
        host_cert = h.issue_leaf("www.elsewhere.example")
        chain = [_appliance_cert("SophosApplianceCertificate_1"), host_cert]
        analysis = classify_leaf_placement("scanned.example", chain)
        assert analysis.placement is LeafPlacement.INCORRECTLY_PLACED_MISMATCHED
        assert not analysis.compliant

    def test_other_when_nothing_hostlike(self):
        chain = [_appliance_cert("Plesk"), _appliance_cert("localhost")]
        analysis = classify_leaf_placement("scanned.example", chain)
        assert analysis.placement is LeafPlacement.OTHER
        assert analysis.deciding_index is None
        assert analysis.compliant  # flagged for review, not a violation

    def test_empty_chain_is_other(self):
        assert (
            classify_leaf_placement("x.example", []).placement
            is LeafPlacement.OTHER
        )


class TestDecisionOrder:
    def test_match_beats_hostlike_in_tail(self, world):
        h, leaf, _ = world
        # Tail holds a host-formatted cert before the matching one; the
        # match must still win (paper checks match first).
        chain = [
            _appliance_cert("Plesk"),
            h.issue_leaf("wrong-host.example"),
            leaf,
        ]
        analysis = classify_leaf_placement("leaft.example", chain)
        assert analysis.placement is LeafPlacement.INCORRECTLY_PLACED_MATCHED
        assert analysis.deciding_index == 2

    def test_first_position_checked_before_tail(self, world):
        _h, leaf, chain = world
        # Even with a matching cert later, a matching first cert decides.
        analysis = classify_leaf_placement("leaft.example", [*chain, leaf])
        assert analysis.placement is LeafPlacement.CORRECTLY_PLACED_MATCHED

    def test_placement_properties(self):
        assert LeafPlacement.CORRECTLY_PLACED_MATCHED.matched
        assert not LeafPlacement.CORRECTLY_PLACED_MISMATCHED.matched
        assert LeafPlacement.INCORRECTLY_PLACED_MATCHED.matched
        assert not LeafPlacement.OTHER.correctly_placed
