"""Chain topology graphs: labels, paths, cycles, the Figure 2 shapes."""

import pytest

from repro.ca import build_cross_signed_pair, build_hierarchy, malform
from repro.core import ChainTopology, certificate_role


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("Topo", depth=2, key_seed_prefix="topo")
    leaf = h.issue_leaf("topo.example")
    other = build_hierarchy("TopoOther", depth=1, key_seed_prefix="topo-o")
    return h, leaf, other


class TestBasics:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ChainTopology([])

    def test_compliant_chain_single_path(self, world):
        h, leaf, _ = world
        topo = ChainTopology(h.chain_for(leaf, include_root=True))
        assert topo.leaf_paths == [(0, 1, 2, 3)]
        assert topo.is_single_compliant_path()
        assert not topo.has_duplicates
        assert not topo.has_irrelevant
        assert not topo.has_reversed_path

    def test_roles(self, world):
        h, leaf, _ = world
        assert certificate_role(leaf) == "leaf"
        assert certificate_role(h.intermediates[0].certificate) == "intermediate"
        assert certificate_role(h.root.certificate) == "root"

    def test_bare_leaf_terminates_immediately(self, world):
        _h, leaf, _ = world
        topo = ChainTopology([leaf])
        assert topo.leaf_paths == [(0,)]
        assert topo.terminal_nodes()[0].certificate is leaf


class TestDuplicateLabels:
    def test_labels_follow_paper_notation(self, world):
        h, leaf, _ = world
        chain = h.chain_for(leaf)
        duplicated = malform.duplicate_certificate(chain, 1, copies=2)
        topo = ChainTopology(duplicated)
        assert topo.position_labels() == ["0", "1", "2", "1[1]", "1[2]"]

    def test_duplicate_node_tracks_occurrences(self, world):
        h, leaf, _ = world
        chain = malform.duplicate_leaf(h.chain_for(leaf))
        topo = ChainTopology(chain)
        assert topo.nodes[0].occurrences == (0, 1)
        assert topo.duplicate_roles() == {"leaf"}

    def test_max_duplicate_count(self, world):
        h, leaf, _ = world
        chain = malform.duplicate_certificate(h.chain_for(leaf), 0, copies=25)
        assert ChainTopology(chain).max_duplicate_count == 26

    def test_dedup_does_not_create_phantom_edges(self, world):
        h, leaf, _ = world
        chain = malform.duplicate_leaf(h.chain_for(leaf))
        topo = ChainTopology(chain)
        # Duplicates collapse; a single path over unique nodes remains.
        assert len(topo.leaf_paths) == 1


class TestIrrelevant:
    def test_unconnected_root_is_irrelevant(self, world):
        h, leaf, other = world
        chain = malform.insert_irrelevant(
            h.chain_for(leaf), [other.root.certificate]
        )
        topo = ChainTopology(chain)
        assert [n.certificate for n in topo.irrelevant_nodes()] == [
            other.root.certificate
        ]

    def test_stale_leaf_is_irrelevant(self, world):
        h, leaf, _ = world
        stale = h.issue_leaf("topo.example")
        chain = malform.append_stale_leaves(h.chain_for(leaf), [stale])
        topo = ChainTopology(chain)
        assert stale in [n.certificate for n in topo.irrelevant_nodes()]

    def test_ancestors_are_relevant(self, world):
        h, leaf, _ = world
        topo = ChainTopology(h.chain_for(leaf, include_root=True))
        assert topo.relevant_positions == frozenset({0, 1, 2, 3})


class TestReversedAndMultipath:
    def test_reversed_intermediates_detected(self, world):
        h, leaf, _ = world
        chain = malform.reverse_intermediates(h.chain_for(leaf, include_root=True))
        topo = ChainTopology(chain)
        assert topo.has_reversed_path
        assert topo.all_paths_reversed
        assert topo.path_structure(topo.leaf_paths[0]) == "1->2->3->0"

    def test_cross_sign_yields_multiple_paths(self):
        primary, legacy, cross = build_cross_signed_pair(
            "TopoXS", key_seed_prefix="topo-xs"
        )
        leaf = primary.issue_leaf("xs.example")
        chain = [leaf, primary.intermediates[0].certificate, cross,
                 primary.root.certificate, legacy.root.certificate]
        topo = ChainTopology(chain)
        assert topo.has_multiple_paths
        assert len(topo.leaf_paths) == 2
        assert not topo.is_single_compliant_path()

    def test_misplaced_cross_sign_reverses_one_path(self):
        primary, legacy, cross = build_cross_signed_pair(
            "TopoXS2", key_seed_prefix="topo-xs2"
        )
        leaf = primary.issue_leaf("xs2.example")
        # Root placed before the intermediate: the direct path reverses.
        chain = [leaf, primary.root.certificate,
                 primary.intermediates[0].certificate, cross,
                 legacy.root.certificate]
        topo = ChainTopology(chain)
        assert topo.has_reversed_path
        assert not topo.all_paths_reversed

    def test_cyclic_cross_signs_terminate(self):
        # CVE-2024-0567 shape: A signs B and B signs A.
        a = build_hierarchy("CycleA", depth=0, key_seed_prefix="cycle-a")
        b = build_hierarchy("CycleB", depth=0, key_seed_prefix="cycle-b")
        a_by_b = b.root.cross_sign(a.root)
        b_by_a = a.root.cross_sign(b.root)
        leaf = a.issue_leaf("cycle.example")
        topo = ChainTopology([leaf, a_by_b, b_by_a])
        assert topo.leaf_paths  # terminates rather than recursing forever
        for path in topo.leaf_paths:
            assert len(path) == len(set(path))


class TestExports:
    def test_networkx_export(self, world):
        h, leaf, _ = world
        graph = ChainTopology(h.chain_for(leaf, include_root=True)).to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.has_edge(0, 1)
        assert graph.nodes[3]["role"] == "root"
