"""Completeness classes, the one-hop AIA rule, and failure taxonomies."""

import pytest

from repro.ca import build_hierarchy
from repro.core import (
    CompletenessClass,
    analyze_completeness,
)
from repro.trust import RootStore, StaticAIARepository


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy(
        "CompT", depth=2, key_seed_prefix="compt",
        aia_base="http://aia.compt.example",
    )
    leaf = h.issue_leaf("compt.example")
    store = RootStore("compt", [h.root.certificate])
    repo = StaticAIARepository()
    for authority in h.authorities:
        repo.publish(authority.aia_uri, authority.certificate)
    return h, leaf, store, repo


class TestClasses:
    def test_with_root(self, world):
        h, leaf, store, repo = world
        analysis = analyze_completeness(
            h.chain_for(leaf, include_root=True), store, repo
        )
        assert analysis.category is CompletenessClass.COMPLETE_WITH_ROOT
        assert analysis.complete
        assert analysis.aia_outcome is None

    def test_without_root_via_store_akid(self, world):
        h, leaf, store, repo = world
        analysis = analyze_completeness(h.chain_for(leaf), store, repo)
        assert analysis.category is CompletenessClass.COMPLETE_WITHOUT_ROOT

    def test_incomplete_missing_intermediate(self, world):
        h, leaf, store, repo = world
        analysis = analyze_completeness([leaf, h.chain_for(leaf)[1]], store, repo)
        # terminal is the leaf-adjacent intermediate... its issuer is the
        # upper intermediate — not a root — so the chain is incomplete.
        assert analysis.category is CompletenessClass.INCOMPLETE
        assert analysis.aia_fixable
        assert analysis.missing_count == 1

    def test_bare_leaf_missing_two(self, world):
        h, leaf, store, repo = world
        analysis = analyze_completeness([leaf], store, repo)
        assert analysis.category is CompletenessClass.INCOMPLETE
        assert analysis.missing_count == 2

    def test_one_hop_aia_to_self_signed_counts_complete(self, world):
        """A terminal whose AIA-fetched direct issuer is self-signed is
        complete-without-root even when the store cannot identify it."""
        h, leaf, _store, repo = world
        empty_store = RootStore("empty")
        chain = h.chain_for(leaf)
        # Terminal = upper intermediate; its direct issuer (the root) is
        # self-signed and fetchable -> complete without root.
        analysis = analyze_completeness(chain, empty_store, repo)
        assert analysis.category is CompletenessClass.COMPLETE_WITHOUT_ROOT


class TestAIAFailures:
    def test_unsupported_when_no_fetcher(self, world):
        h, leaf, store, _repo = world
        analysis = analyze_completeness([leaf], store, None)
        assert analysis.category is CompletenessClass.INCOMPLETE
        assert analysis.aia_outcome == "unsupported"
        assert not analysis.aia_fixable

    def test_missing_aia_field(self, world):
        h, _leaf, store, repo = world
        bare = h.issuing_ca.issue_leaf("noaia.example", include_aia=False)
        analysis = analyze_completeness([bare], store, repo)
        assert analysis.aia_outcome == "missing_aia"

    def test_unreachable_uri(self, world):
        h, _leaf, store, repo = world
        dead = h.issuing_ca.issue_leaf(
            "dead.example", aia_uri="http://aia.compt.example/dead.crt"
        )
        repo.mark_unreachable("http://aia.compt.example/dead.crt")
        analysis = analyze_completeness([dead], store, repo)
        assert analysis.aia_outcome == "unreachable"

    def test_wrong_certificate_at_uri(self, world):
        h, _leaf, store, repo = world
        uri = "http://aia.compt.example/wrong.crt"
        wrong = h.issuing_ca.issue_leaf("wrong.example", aia_uri=uri)
        repo.publish_wrong(uri, wrong)  # the CAcert case: serves itself
        analysis = analyze_completeness([wrong], store, repo)
        assert analysis.aia_outcome == "wrong_certificate"


class TestSelfSignedChains:
    def test_self_signed_leaf_complete_with_root(self, world):
        _h, _leaf, store, repo = world
        from repro.ca import next_serial
        from repro.x509 import (
            CertificateBuilder, Name, SimulatedKeyPair, Validity, utc,
        )

        key = SimulatedKeyPair()
        selfsigned = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="self.example"))
            .issuer_name(Name.build(common_name="self.example"))
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
            .public_key(key.public_key)
            .end_entity()
            .sign(key)
        )
        analysis = analyze_completeness([selfsigned], store, repo)
        assert analysis.category is CompletenessClass.COMPLETE_WITH_ROOT

    def test_multiple_terminals_best_class_wins(self, world):
        h, leaf, store, repo = world
        # Chain with the root present: even alongside noise the
        # self-signed terminal classifies the chain complete-with-root.
        chain = h.chain_for(leaf, include_root=True)
        other = build_hierarchy("CompO", depth=0, key_seed_prefix="compo")
        noisy = [*chain, other.root.certificate]
        analysis = analyze_completeness(noisy, store, repo)
        assert analysis.category is CompletenessClass.COMPLETE_WITH_ROOT
