"""Cross-sign analysis over a passive certificate pool."""

import pytest

from repro.ca import build_cross_signed_pair, build_hierarchy
from repro.core import CertificatePool
from repro.x509 import Validity, utc


@pytest.fixture(scope="module")
def world():
    primary, legacy, cross = build_cross_signed_pair(
        "PoolXS", key_seed_prefix="pool-xs",
        cross_sign_validity=Validity(utc(2020, 1, 1), utc(2024, 6, 1)),
    )
    leaf = primary.issue_leaf("pool.example", not_before=utc(2024, 1, 1),
                              days=365)
    pool = CertificatePool()
    pool.add_chain([leaf, primary.intermediates[0].certificate, cross,
                    primary.root.certificate, legacy.root.certificate])
    return primary, legacy, cross, leaf, pool


class TestPoolBasics:
    def test_dedup_on_add(self, world):
        _p, _l, cross, _leaf, pool = world
        before = len(pool)
        assert not pool.add(cross)
        assert len(pool) == before

    def test_add_chain_counts_new(self, world, hierarchy, leaf):
        _p, _l, _c, _pl, _pool = world
        pool = CertificatePool()
        chain = hierarchy.chain_for(leaf, include_root=True)
        assert pool.add_chain(chain) == len(chain)
        assert pool.add_chain(chain) == 0


class TestGrouping:
    def test_cross_signed_group_found(self, world):
        primary, _legacy, cross, _leaf, pool = world
        groups = pool.cross_signed_groups()
        assert len(groups) == 1
        group = groups[0]
        assert group.is_cross_signed
        assert len(group.certificates) == 2
        # Both variants are issued by (different) parents; no variant of
        # this intermediate is self-signed.
        assert len(group.cross_signs) == 2
        assert len(group.self_signed_variants) == 0
        assert len(group.issuers()) == 2

    def test_single_variant_cas_not_cross_signed(self, world):
        _p, _l, _c, _leaf, pool = world
        singles = [g for g in pool.groups() if not g.is_cross_signed]
        assert len(singles) == 2  # the two roots

    def test_expiring_before(self, world):
        _p, _l, cross, _leaf, pool = world
        group = pool.cross_signed_groups()[0]
        expiring = group.expiring_before(utc(2025, 1, 1))
        assert cross in expiring


class TestPathEnumeration:
    def test_two_anchored_paths(self, world):
        _p, _l, _c, leaf, pool = world
        paths = pool.all_paths(leaf)
        anchored = [p for p in paths if p[-1].is_self_signed]
        assert len(anchored) == 2

    def test_valid_paths_shrink_after_cross_expiry(self, world):
        _p, _l, _c, leaf, pool = world
        before = pool.valid_paths_at(leaf, utc(2024, 5, 1))
        after = pool.valid_paths_at(leaf, utc(2024, 8, 1))
        assert len(before) == 2
        assert len(after) == 1

    def test_dead_end_paths_included_truncated(self, hierarchy, leaf):
        pool = CertificatePool([leaf, hierarchy.intermediates[1].certificate])
        paths = pool.all_paths(leaf)
        assert len(paths) == 1
        assert not paths[0][-1].is_self_signed

    def test_max_depth_bounds_traversal(self, world):
        _p, _l, _c, leaf, pool = world
        paths = pool.all_paths(leaf, max_depth=2)
        assert all(len(p) <= 2 for p in paths)


class TestRiskConditions:
    def test_cyclic_cross_signs_detected(self):
        a = build_hierarchy("CycA", depth=0, key_seed_prefix="pool-cyc-a")
        b = build_hierarchy("CycB", depth=0, key_seed_prefix="pool-cyc-b")
        pool = CertificatePool([
            b.root.cross_sign(a.root),
            a.root.cross_sign(b.root),
        ])
        cycles = pool.cyclic_cross_signs()
        assert len(cycles) == 1

    def test_no_cycles_in_clean_hierarchy(self, hierarchy, leaf):
        pool = CertificatePool(hierarchy.chain_for(leaf, include_root=True))
        assert pool.cyclic_cross_signs() == []

    def test_outage_report_at_risk_then_not(self, world):
        _p, _l, _c, leaf, pool = world
        report = pool.outage_report(leaf, utc(2024, 8, 1))
        assert report.total_paths == 2
        assert report.valid_paths == 1
        assert report.expired_paths == 1
        assert report.at_risk
        assert not report.broken

        healthy = pool.outage_report(leaf, utc(2024, 5, 1))
        assert not healthy.at_risk and not healthy.broken

    def test_outage_report_broken_when_all_paths_dead(self, world):
        _p, _l, _c, leaf, pool = world
        report = pool.outage_report(leaf, utc(2045, 1, 1))
        assert report.valid_paths == 0
        assert report.broken
