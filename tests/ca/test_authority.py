"""CertificateAuthority: roots, issuance, cross-signing, AIA wiring."""

import pytest

from repro.ca import CertificateAuthority, next_serial
from repro.core import issued
from repro.errors import IssuanceError
from repro.x509 import Name, Validity, utc

VALIDITY = Validity(utc(2020, 1, 1), utc(2035, 1, 1))


def _root(org="AuthTest", **kwargs):
    return CertificateAuthority(
        Name.build(organization=org, common_name=f"{org} Root"),
        validity=VALIDITY,
        key_seed=f"authtest/{org}".encode(),
        **kwargs,
    )


class TestRoot:
    def test_generated_root_is_self_signed(self):
        root = _root()
        assert root.is_root
        assert root.certificate.is_self_signed

    def test_root_requires_validity(self):
        with pytest.raises(IssuanceError):
            CertificateAuthority(Name.build(common_name="x"))

    def test_root_has_skid_and_ca_usage(self):
        cert = _root().certificate
        assert cert.subject_key_id == cert.public_key.key_id
        assert cert.is_ca
        assert cert.extensions.key_usage.key_cert_sign

    def test_aia_uri_derives_from_cn(self):
        root = _root("Slug Org", aia_base="http://aia.test")
        assert root.aia_uri == "http://aia.test/slug-org-root.crt"

    def test_no_aia_base_means_no_uri(self):
        assert _root().aia_uri is None


class TestIntermediateIssuance:
    def test_issuance_relation_holds(self):
        root = _root("RelOrg")
        child = root.issue_intermediate(Name.build(common_name="Rel Int"))
        assert issued(root.certificate, child.certificate)

    def test_intermediate_is_not_root(self):
        root = _root("NotRoot")
        child = root.issue_intermediate(Name.build(common_name="NR Int"))
        assert not child.is_root

    def test_akid_matches_parent_key(self):
        root = _root("AkidOrg")
        child = root.issue_intermediate(Name.build(common_name="Akid Int"))
        assert (
            child.certificate.authority_key_id
            == root.keypair.public_key.key_id
        )

    def test_akid_omittable(self):
        root = _root("NoAkid")
        child = root.issue_intermediate(
            Name.build(common_name="NA Int"), include_akid=False
        )
        assert child.certificate.authority_key_id is None

    def test_path_length_constraint_applied(self):
        root = _root("PathLen")
        child = root.issue_intermediate(
            Name.build(common_name="PL Int"), path_length=0
        )
        assert child.certificate.path_length_constraint == 0

    def test_aia_base_propagates(self):
        root = _root("Prop", aia_base="http://aia.prop")
        child = root.issue_intermediate(Name.build(common_name="Prop Int"))
        assert child.aia_uri.startswith("http://aia.prop/")
        assert child.certificate.aia_ca_issuer_uris == (root.aia_uri,)

    def test_validity_clamped_to_ca_expiry(self):
        root = _root("Clamp")
        child = root.issue_intermediate(
            Name.build(common_name="Clamp Int"),
            not_before=utc(2034, 1, 1),
            days=3650,
        )
        assert child.certificate.validity.not_after == VALIDITY.not_after


class TestLeafIssuance:
    def test_leaf_matches_domain(self):
        root = _root("LeafOrg")
        leaf = root.issue_leaf("leafy.example")
        assert leaf.matches_domain("leafy.example")
        assert not leaf.is_ca

    def test_leaf_custom_common_name(self):
        root = _root("CNOrg")
        leaf = root.issue_leaf("x.example", common_name="Custom CN")
        assert leaf.subject.common_name == "Custom CN"
        assert leaf.matches_domain("x.example")  # via SAN

    def test_leaf_san_override(self):
        root = _root("SanOrg")
        leaf = root.issue_leaf("a.example", san_domains=("b.example",))
        assert leaf.matches_domain("b.example")
        assert not leaf.matches_domain("a.example")

    def test_leaf_aia_uri_override(self):
        root = _root("OverrideOrg", aia_base="http://aia.default")
        leaf = root.issue_leaf("o.example", aia_uri="http://aia.custom/x.crt")
        assert leaf.aia_ca_issuer_uris == ("http://aia.custom/x.crt",)

    def test_leaf_without_aia(self):
        root = _root("NoAia", aia_base="http://aia.noaia")
        leaf = root.issue_leaf("n.example", include_aia=False)
        assert leaf.aia_ca_issuer_uris == ()

    def test_leaf_without_skid(self):
        root = _root("NoSkid")
        leaf = root.issue_leaf("ns.example", include_skid=False)
        assert leaf.subject_key_id is None


class TestCrossSign:
    def test_cross_sign_same_subject_and_key(self):
        primary = _root("PrimaryX")
        legacy = _root("LegacyX")
        cross = legacy.cross_sign(primary)
        assert cross.subject == primary.certificate.subject
        assert cross.public_key == primary.certificate.public_key
        assert cross.issuer == legacy.certificate.subject
        assert not cross.is_self_signed

    def test_cross_sign_verifies_under_signer(self):
        primary, legacy = _root("PX2"), _root("LX2")
        cross = legacy.cross_sign(primary)
        assert cross.verify_signature(legacy.keypair.public_key)
        assert issued(legacy.certificate, cross)


def test_serials_are_unique():
    serials = {next_serial() for _ in range(1000)}
    assert len(serials) == 1000
