"""Chain mutation operators: purity and semantics of each."""

import random

import pytest

from repro.ca import build_hierarchy, malform
from repro.core import ChainTopology, OrderDefect, analyze_order


@pytest.fixture(scope="module")
def setup():
    h = build_hierarchy("Malform", depth=2, key_seed_prefix="malform")
    leaf = h.issue_leaf("malform.example")
    other = build_hierarchy("MalformOther", depth=1,
                            key_seed_prefix="malform-other")
    return h, leaf, h.chain_for(leaf, include_root=True), other


class TestPurity:
    def test_operators_do_not_mutate_input(self, setup):
        _h, _leaf, chain, other = setup
        snapshot = list(chain)
        malform.reverse_chain(chain)
        malform.reverse_intermediates(chain)
        malform.duplicate_leaf(chain)
        malform.insert_irrelevant(chain, [other.root.certificate])
        malform.drop_intermediates(chain, [1])
        malform.shuffle_chain(chain, random.Random(0))
        malform.swap(chain, 0, 1)
        malform.move_leaf(chain, 2)
        assert chain == snapshot


class TestReversals:
    def test_reverse_chain(self, setup):
        _h, leaf, chain, _ = setup
        reversed_ = malform.reverse_chain(chain)
        assert reversed_[-1] is leaf
        assert reversed_[0].is_self_signed

    def test_reverse_intermediates_keeps_leaf_first(self, setup):
        _h, leaf, chain, _ = setup
        result = malform.reverse_intermediates(chain)
        assert result[0] is leaf
        assert result[1:] == list(reversed(chain[1:]))
        analysis = analyze_order(result)
        assert analysis.has(OrderDefect.REVERSED_SEQUENCES)

    def test_reverse_intermediates_short_chain_unchanged(self, setup):
        _h, leaf, chain, _ = setup
        assert malform.reverse_intermediates([leaf, chain[1]]) == [leaf, chain[1]]


class TestDuplicates:
    def test_duplicate_leaf_adjacent(self, setup):
        _h, leaf, chain, _ = setup
        result = malform.duplicate_leaf(chain)
        assert result[0] == result[1] == leaf
        assert len(result) == len(chain) + 1

    def test_duplicate_leaf_at_end(self, setup):
        _h, leaf, chain, _ = setup
        result = malform.duplicate_leaf(chain, adjacent=False)
        assert result[-1] == leaf

    def test_duplicate_leaf_multiple_copies(self, setup):
        _h, _leaf, chain, _ = setup
        result = malform.duplicate_leaf(chain, copies=3)
        assert len(result) == len(chain) + 3

    def test_duplicate_leaf_empty_chain(self):
        assert malform.duplicate_leaf([]) == []

    def test_duplicate_certificate_by_index(self, setup):
        _h, _leaf, chain, _ = setup
        result = malform.duplicate_certificate(chain, 1, copies=2)
        assert result.count(chain[1]) == 3

    def test_duplicate_block(self, setup):
        _h, _leaf, chain, _ = setup
        result = malform.duplicate_block(chain, [1, 2], repetitions=3)
        assert len(result) == len(chain) + 6
        assert ChainTopology(result).max_duplicate_count == 4


class TestIrrelevantAndDrops:
    def test_insert_irrelevant_appends(self, setup):
        _h, _leaf, chain, other = setup
        result = malform.insert_irrelevant(chain, [other.root.certificate])
        assert result[-1] == other.root.certificate
        assert analyze_order(result).has(OrderDefect.IRRELEVANT_CERTIFICATES)

    def test_insert_irrelevant_at_position(self, setup):
        _h, _leaf, chain, other = setup
        result = malform.insert_irrelevant(
            chain, [other.root.certificate], position=1
        )
        assert result[1] == other.root.certificate

    def test_drop_intermediates(self, setup):
        _h, leaf, chain, _ = setup
        result = malform.drop_intermediates(chain, [1])
        assert chain[1] not in result
        assert result[0] is leaf

    def test_drop_all_but_leaf(self, setup):
        _h, leaf, chain, _ = setup
        assert malform.drop_all_but_leaf(chain) == [leaf]

    def test_append_stale_leaves_inserts_behind_leaf(self, setup):
        h, leaf, chain, _ = setup
        stale = [h.issue_leaf("malform.example") for _ in range(2)]
        result = malform.append_stale_leaves(chain, stale)
        assert result[0] is leaf
        assert result[1:3] == stale


class TestRearrangements:
    def test_shuffle_with_pinned_leaf(self, setup):
        _h, leaf, chain, _ = setup
        result = malform.shuffle_chain(chain, random.Random(7),
                                       keep_leaf_first=True)
        assert result[0] is leaf
        assert sorted(c.fingerprint for c in result) == sorted(
            c.fingerprint for c in chain
        )

    def test_shuffle_is_seed_deterministic(self, setup):
        _h, _leaf, chain, _ = setup
        a = malform.shuffle_chain(chain, random.Random(3))
        b = malform.shuffle_chain(chain, random.Random(3))
        assert a == b

    def test_swap(self, setup):
        _h, _leaf, chain, _ = setup
        result = malform.swap(chain, 0, 2)
        assert result[0] == chain[2] and result[2] == chain[0]

    def test_move_leaf(self, setup):
        _h, leaf, chain, _ = setup
        result = malform.move_leaf(chain, 2)
        assert result[2] is leaf
        assert len(result) == len(chain)

    def test_move_leaf_empty(self):
        assert malform.move_leaf([], 1) == []
