"""CA delivery: bundle files per profile and the naive-merge defect."""

import pytest

from repro.ca import (
    BUNDLE_FILE,
    FULLCHAIN_FILE,
    GOGETSSL,
    LEAF_FILE,
    LETS_ENCRYPT,
    TRUSTICO,
    build_cross_signed_pair,
    build_hierarchy,
    deliver,
)
from repro.core import OrderDefect, analyze_order
from repro.errors import IssuanceError
from repro.x509 import load_pem_bundle


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("Deliver", depth=2, key_seed_prefix="deliver")
    return h, h.issue_leaf("deliver.example")


class TestFileLayouts:
    def test_lets_encrypt_ships_fullchain(self, world):
        h, leaf = world
        bundle = deliver(h, leaf, LETS_ENCRYPT)
        assert bundle.has_fullchain
        fullchain = bundle.files[FULLCHAIN_FILE]
        assert fullchain[0] is leaf
        assert analyze_order(fullchain).compliant

    def test_gogetssl_ships_reversed_bundle_with_root(self, world):
        h, leaf = world
        bundle = deliver(h, leaf, GOGETSSL)
        assert not bundle.has_fullchain
        ca_bundle = bundle.files[BUNDLE_FILE]
        assert ca_bundle[0].is_self_signed  # root first — reversed
        assert ca_bundle[-1] == h.intermediates[-1].certificate

    def test_leaf_file_contains_only_leaf(self, world):
        h, leaf = world
        bundle = deliver(h, leaf, GOGETSSL)
        assert bundle.files[LEAF_FILE] == [leaf]

    def test_missing_file_raises(self, world):
        h, leaf = world
        bundle = deliver(h, leaf, GOGETSSL)
        with pytest.raises(IssuanceError):
            bundle.pem(FULLCHAIN_FILE)

    def test_pem_rendering_parses_back(self, world):
        h, leaf = world
        bundle = deliver(h, leaf, LETS_ENCRYPT)
        assert load_pem_bundle(bundle.pem(FULLCHAIN_FILE)) == (
            bundle.files[FULLCHAIN_FILE]
        )


class TestNaiveConcatenation:
    def test_reversed_bundle_merge_produces_reversed_chain(self, world):
        h, leaf = world
        merged = deliver(h, leaf, TRUSTICO).naive_concatenation()
        analysis = analyze_order(merged)
        assert analysis.has(OrderDefect.REVERSED_SEQUENCES)

    def test_compliant_bundle_merge_stays_compliant(self, world):
        h, leaf = world
        merged = deliver(h, leaf, LETS_ENCRYPT).naive_concatenation()
        assert analyze_order(merged).compliant


class TestOmissionsAndCrossSigns:
    def test_omitted_intermediate(self, world):
        h, leaf = world
        bundle = deliver(h, leaf, LETS_ENCRYPT, omit_intermediate_index=1)
        merged = bundle.naive_concatenation()
        assert h.intermediates[0].certificate not in merged

    def test_omit_index_clamped(self, world):
        h, leaf = world
        bundle = deliver(h, leaf, LETS_ENCRYPT, omit_intermediate_index=99)
        assert len(bundle.files[BUNDLE_FILE]) == 1

    def test_cross_signed_bundle_includes_variant(self):
        primary, _legacy, cross = build_cross_signed_pair(
            "DeliverXS", key_seed_prefix="deliver-xs"
        )
        from repro.ca import SECTIGO

        leaf = primary.issue_leaf("xs-deliver.example")
        bundle = deliver(primary, leaf, SECTIGO)
        ca_bundle = bundle.files[BUNDLE_FILE]
        assert cross in ca_bundle
        original = primary.intermediates[0].certificate
        assert ca_bundle.index(cross) == ca_bundle.index(original) + 1
