"""CA profiles: Table 6 regeneration and validation."""

import pytest

from repro.ca import (
    ALL_CAS,
    CAProfile,
    GOGETSSL,
    LETS_ENCRYPT,
    PROFILED_CAS,
    TABLE6_CAS,
    TRUSTICO,
    profile_by_name,
    table6_rows,
)


class TestProfiles:
    def test_eight_profiled_cas(self):
        assert len(PROFILED_CAS) == 8

    def test_lookup_by_name(self):
        assert profile_by_name("gogetssl") is GOGETSSL

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("honest-achmed")

    def test_reversed_resellers(self):
        reversed_cas = [p.name for p in ALL_CAS if p.bundle_order == "reversed"]
        assert sorted(reversed_cas) == ["cyber-folks", "gogetssl", "trustico"]

    def test_lets_encrypt_automated_and_compliant(self):
        assert LETS_ENCRYPT.automatic_management
        assert LETS_ENCRYPT.provides_fullchain
        assert LETS_ENCRYPT.bundle_order == "issuance"

    def test_market_weights_positive(self):
        assert all(p.market_weight > 0 for p in ALL_CAS)

    def test_lets_encrypt_dominates_market(self):
        assert LETS_ENCRYPT.market_weight == max(
            p.market_weight for p in ALL_CAS
        )


class TestValidation:
    def test_bad_bundle_order_rejected(self):
        with pytest.raises(ValueError):
            CAProfile(
                name="x", display_name="X", automatic_management=False,
                provides_fullchain=False, provides_ca_bundle=True,
                includes_root=False, bundle_order="sideways",
                install_guide="none", market_weight=1,
            )

    def test_bad_guide_rejected(self):
        with pytest.raises(ValueError):
            CAProfile(
                name="x", display_name="X", automatic_management=False,
                provides_fullchain=False, provides_ca_bundle=True,
                includes_root=False, bundle_order="issuance",
                install_guide="sometimes", market_weight=1,
            )

    def test_adoption_bounds_checked(self):
        with pytest.raises(ValueError):
            CAProfile(
                name="x", display_name="X", automatic_management=True,
                provides_fullchain=True, provides_ca_bundle=False,
                includes_root=False, bundle_order="issuance",
                install_guide="full", market_weight=1,
                automation_adoption=1.5,
            )


class TestTable6:
    def test_row_per_table6_ca(self):
        rows = table6_rows()
        assert len(rows) == len(TABLE6_CAS) == 5

    def test_trustico_row_shows_reversed_order(self):
        row = next(r for r in table6_rows() if r["ca"] == "Trustico")
        assert row["compliant_issuance_order_in_ca_bundle"] == "no"
        assert row["provides_root_certificate"] == "yes"

    def test_gogetssl_guide_is_partial(self):
        row = next(r for r in table6_rows() if r["ca"] == "GoGetSSL")
        assert row["provides_certificate_installation_guide"] == "only Apache/IIS"
