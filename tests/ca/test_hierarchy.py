"""Hierarchy construction helpers."""

import pytest

from repro.ca import (
    Hierarchy,
    build_cross_signed_pair,
    build_hierarchy,
    build_long_chain,
)
from repro.core import ChainTopology, issued
from repro.errors import HierarchyError


class TestBuildHierarchy:
    def test_depth_zero_root_signs_leaves(self):
        h = build_hierarchy("Zero", depth=0, key_seed_prefix="h0")
        leaf = h.issue_leaf("z.example")
        assert issued(h.root.certificate, leaf)
        assert h.chain_for(leaf) == [leaf]

    def test_depth_two_ladder_links(self):
        h = build_hierarchy("Two", depth=2, key_seed_prefix="h2")
        root, i1, i2 = h.authorities
        assert issued(root.certificate, i1.certificate)
        assert issued(i1.certificate, i2.certificate)
        assert not issued(root.certificate, i2.certificate)

    def test_chain_for_orders_leaf_first(self):
        h = build_hierarchy("Order", depth=2, key_seed_prefix="ho")
        leaf = h.issue_leaf("o.example")
        chain = h.chain_for(leaf)
        assert chain[0] is leaf
        assert ChainTopology(chain).is_single_compliant_path()

    def test_chain_for_include_root(self):
        h = build_hierarchy("Root", depth=1, key_seed_prefix="hr")
        leaf = h.issue_leaf("r.example")
        chain = h.chain_for(leaf, include_root=True)
        assert chain[-1].is_self_signed

    def test_negative_depth_rejected(self):
        with pytest.raises(HierarchyError):
            build_hierarchy("Neg", depth=-1)

    def test_path_lengths_applied_per_intermediate(self):
        h = build_hierarchy("PL", depth=2, key_seed_prefix="hpl",
                            path_lengths=(1, 0))
        assert h.intermediates[0].certificate.path_length_constraint == 1
        assert h.intermediates[1].certificate.path_length_constraint == 0

    def test_path_lengths_arity_checked(self):
        with pytest.raises(HierarchyError):
            build_hierarchy("Bad", depth=2, path_lengths=(1,))

    def test_seeded_hierarchies_are_reproducible(self):
        a = build_hierarchy("Seeded", depth=1, key_seed_prefix="same")
        b = build_hierarchy("Seeded", depth=1, key_seed_prefix="same")
        assert a.root.certificate.public_key == b.root.certificate.public_key

    def test_hierarchy_requires_self_signed_head(self):
        h = build_hierarchy("Head", depth=1, key_seed_prefix="hh")
        with pytest.raises(HierarchyError):
            Hierarchy([h.intermediates[0]])

    def test_all_certificates_lists_everything(self):
        h = build_hierarchy("All", depth=2, key_seed_prefix="ha")
        assert len(h.all_certificates()) == 3


class TestCrossSignedPair:
    def test_cross_sign_creates_second_parent(self):
        primary, legacy, cross = build_cross_signed_pair(
            "XS", key_seed_prefix="xs"
        )
        intermediate = primary.intermediates[0].certificate
        assert issued(primary.root.certificate, intermediate)
        leaf = primary.issue_leaf("xs.example")
        chain = [leaf, intermediate, cross,
                 primary.root.certificate, legacy.root.certificate]
        topology = ChainTopology(chain)
        assert topology.has_multiple_paths

    def test_cross_recorded_on_primary(self):
        primary, _legacy, cross = build_cross_signed_pair(
            "XSR", key_seed_prefix="xsr"
        )
        assert cross in primary.cross_signed
        assert cross in primary.all_certificates()


class TestLongChain:
    def test_long_chain_depth(self):
        h = build_long_chain("Long", 10, key_seed_prefix="hl")
        assert len(h.intermediates) == 10
        leaf = h.issue_leaf("long.example")
        chain = h.chain_for(leaf, include_root=True)
        assert len(chain) == 12
        assert ChainTopology(chain).is_single_compliant_path()
