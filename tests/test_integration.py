"""Cross-module integration: the full paper pipeline, end to end.

These tests exercise generate → install → scan → analyse → differential
over one shared small world, plus the HTTP-backed AIA path and the
real-crypto (ECDSA) backend through the analysis pipeline.
"""

import pytest

from repro.chainbuilder import (
    ALL_CLIENTS,
    DIFFERENTIAL_BROWSERS,
    DifferentialHarness,
    LIBRARIES,
)
from repro.core import analyze_chain
from repro.measurement import Campaign, TableContext
from repro.net import HTTPAIAFetcher, Scanner
from repro.webpki import Ecosystem, EcosystemConfig, VANTAGE_US


@pytest.fixture(scope="module")
def world():
    ecosystem = Ecosystem.generate(EcosystemConfig(n_domains=600, seed=77))
    network = ecosystem.install()
    return ecosystem, network


class TestScanToAnalysis:
    def test_scanned_chains_match_deployments(self, world):
        ecosystem, network = world
        scanner = Scanner(network, VANTAGE_US)
        checked = 0
        for deployment in ecosystem.deployments[:25]:
            if VANTAGE_US in deployment.unreachable_from:
                continue
            record = scanner.scan_domain(deployment.domain)
            assert record.success
            assert list(record.chain) == deployment.chain
            checked += 1
        assert checked > 15

    def test_campaign_over_network(self, world):
        ecosystem, network = world
        campaign = Campaign(ecosystem, network=network)
        collection = campaign.collect()
        report, _ = campaign.analyze(collection.observations)
        assert report.total == collection.total_observations
        assert 0.5 <= report.noncompliance_rate <= 8.0

    def test_http_aia_fetcher_agrees_with_repository(self, world):
        ecosystem, network = world
        fetcher = HTTPAIAFetcher(network, VANTAGE_US)
        for uri, cert in ecosystem.aia_repo.items()[:10]:
            assert fetcher.fetch(uri) == cert

    def test_analysis_identical_over_http_aia(self, world):
        ecosystem, network = world
        union = ecosystem.registry.union()
        http_fetcher = HTTPAIAFetcher(network, VANTAGE_US)
        for domain, chain in ecosystem.observations()[:40]:
            via_repo = analyze_chain(domain, chain, union, ecosystem.aia_repo)
            via_http = analyze_chain(domain, chain, union, http_fetcher)
            assert via_repo.completeness.category == (
                via_http.completeness.category
            )


class TestDifferentialIntegration:
    def test_headline_gap_direction(self, world):
        ecosystem, _ = world
        harness = DifferentialHarness(
            ecosystem.registry, aia_fetcher=ecosystem.aia_repo
        )
        report = harness.run(
            ecosystem.observations(), at_time=ecosystem.config.now,
            observe_into_cache=True,
        )
        lib_fail = report.failure_rate(LIBRARIES)
        browser_fail = report.failure_rate(DIFFERENTIAL_BROWSERS)
        # The paper's §5 headline: libraries fail far more chains than
        # browsers (40.9% vs 12.5% at full scale).
        assert lib_fail > 2 * browser_fail
        assert lib_fail > 15.0

    def test_case_study_verdicts(self, world):
        ecosystem, _ = world
        harness = DifferentialHarness(
            ecosystem.registry, aia_fetcher=ecosystem.aia_repo
        )
        cases = ecosystem.case_studies()
        moment = ecosystem.config.now

        fig3 = harness.evaluate(
            cases["fig3_long_list"].domain,
            cases["fig3_long_list"].chain, at_time=moment,
        )
        assert fig3.result_of("gnutls") == "input_list_too_long"
        assert fig3.result_of("chrome") == "ok"

        fig4 = harness.evaluate(
            cases["fig4_backtracking"].domain,
            cases["fig4_backtracking"].chain, at_time=moment,
        )
        assert fig4.result_of("openssl") == "untrusted_root"
        assert fig4.result_of("cryptoapi") == "ok"

        ns3 = harness.evaluate(
            cases["ns3_block_duplicates"].domain,
            cases["ns3_block_duplicates"].chain, at_time=moment,
        )
        assert ns3.result_of("gnutls") == "input_list_too_long"
        assert ns3.result_of("openssl") == "ok"

    def test_legacy_chains_split_on_aia(self, world):
        """The Table 8 cohort: AIA clients validate, the rest cannot."""
        ecosystem, _ = world
        harness = DifferentialHarness(
            ecosystem.registry, aia_fetcher=ecosystem.aia_repo
        )
        legacy = next(
            d for d in ecosystem.deployments
            if d.legacy and not d.plan.any_defect
            and d.plan.leaf_placement == "matched" and not d.includes_root
        )
        outcome = harness.evaluate(
            legacy.domain, legacy.chain, at_time=ecosystem.config.now
        )
        assert outcome.result_of("cryptoapi") == "ok"
        assert outcome.result_of("chrome") == "ok"
        assert outcome.result_of("openssl") == "no_issuer_found"
        assert outcome.result_of("gnutls") == "no_issuer_found"


class TestTableContextIntegration:
    def test_context_builds_over_scanned_world(self, world):
        ecosystem, _ = world
        ctx = TableContext.build(ecosystem)
        assert ctx.dataset.total == len(ecosystem.observations())
        assert ctx.report_server(ctx.reports[0]) in (
            "apache", "nginx", "azure", "cloudflare", "iis", "aws-elb",
            "other",
        )


class TestECDSABackend:
    def test_analysis_pipeline_backend_agnostic(self):
        """A chain minted with real ECDSA flows through the same rules."""
        from repro.ca import CertificateAuthority
        from repro.core import analyze_order
        from repro.trust import RootStore
        from repro.x509 import Name, Validity, utc

        root = CertificateAuthority(
            Name.build(organization="ECDSA Org", common_name="ECDSA Root"),
            validity=Validity(utc(2020, 1, 1), utc(2035, 1, 1)),
            key_backend="ecdsa",
        )
        intermediate = root.issue_intermediate(
            Name.build(common_name="ECDSA Int"), key_backend="ecdsa"
        )
        leaf = intermediate.issue_leaf("ecdsa.example", key_backend="ecdsa")
        chain = [leaf, intermediate.certificate]
        assert analyze_order(chain).compliant
        store = RootStore("ecdsa", [root.certificate])
        report = analyze_chain("ecdsa.example", chain, store)
        assert report.compliant
