"""Smoke tests for the runnable examples.

Each example's ``main`` runs at a tiny scale so documentation code
cannot rot: if an API changes under an example, these fail.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in ("quickstart", "scan_campaign", "client_capabilities",
                 "differential_testing", "diagnose_deployment",
                 "addtrust_outage", "paper_comparison",
                 "instrumented_scan"):
        sys.modules.pop(name, None)


def _run(name: str, *args, **kwargs):
    module = importlib.import_module(name)
    return module.main(*args, **kwargs)


def test_quickstart(capsys):
    _run("quickstart")
    out = capsys.readouterr().out
    assert "MbedTLS" in out and "Chrome" in out
    assert "reversed_sequences" in out


def test_scan_campaign_small(capsys):
    _run("scan_campaign", 120, 9)
    out = capsys.readouterr().out
    assert "Table 3" in out and "Table 7" in out
    assert "non-compliant" in out


def test_differential_testing_small(capsys):
    _run("differential_testing", 120)
    out = capsys.readouterr().out
    assert "libraries:" in out
    assert "Figure 4" in out


def test_diagnose_deployment_demo(capsys):
    _run("diagnose_deployment", [])
    out = capsys.readouterr().out
    assert "predicted client behaviour" in out
    assert "recommendations" in out


def test_addtrust_outage(capsys):
    _run("addtrust_outage")
    out = capsys.readouterr().out
    assert "day before" in out
    assert "at risk" in out.lower()


def test_paper_comparison_small(capsys):
    _run("paper_comparison", 150, 9)
    out = capsys.readouterr().out
    assert "Table 9" in out
    assert "Section 5.2" in out


def test_instrumented_scan_small(capsys):
    from repro import obs

    _run("instrumented_scan", 120, 9)
    out = capsys.readouterr().out
    assert "scan.attempts (counter)" in out
    assert "campaign.analyze" in out
    assert "chains/s" in out
    assert "Chrome trace JSON" in out
    assert not obs.enabled()  # the example restores the null layer
