"""The command-line interface."""

import pytest

from repro.cli import main
from repro.x509 import load_pem_bundle, to_pem_bundle


@pytest.fixture()
def chain_file(tmp_path, hierarchy, leaf):
    path = tmp_path / "chain.pem"
    path.write_text(to_pem_bundle(
        hierarchy.chain_for(leaf, include_root=True)
    ))
    return path


@pytest.fixture()
def broken_chain_file(tmp_path, hierarchy, leaf):
    from repro.ca import malform

    broken = malform.duplicate_leaf(
        malform.reverse_intermediates(
            hierarchy.chain_for(leaf, include_root=True)
        )
    )
    path = tmp_path / "broken.pem"
    path.write_text(to_pem_bundle(broken))
    return path


class TestAnalyze:
    def test_compliant_chain_exits_zero(self, chain_file, capsys):
        code = main(["analyze", str(chain_file),
                     "--domain", "fixture.example"])
        assert code == 0
        out = capsys.readouterr().out
        assert "COMPLIANT" in out
        assert "correctly_placed_matched" in out

    def test_broken_chain_exits_nonzero(self, broken_chain_file, capsys):
        code = main(["analyze", str(broken_chain_file),
                     "--domain", "fixture.example"])
        assert code == 1
        out = capsys.readouterr().out
        assert "NON-COMPLIANT" in out
        assert "reversed_sequences" in out

    def test_roots_file(self, tmp_path, hierarchy, leaf, capsys):
        from repro.x509 import to_pem

        chain_path = tmp_path / "noroot.pem"
        chain_path.write_text(to_pem_bundle(hierarchy.chain_for(leaf)))
        roots_path = tmp_path / "roots.pem"
        roots_path.write_text(to_pem(hierarchy.root.certificate))
        code = main(["analyze", str(chain_path),
                     "--domain", "fixture.example",
                     "--roots", str(roots_path)])
        assert code == 0


class TestRepair:
    def test_repair_writes_compliant_bundle(self, broken_chain_file,
                                            tmp_path, capsys):
        out_path = tmp_path / "fixed.pem"
        code = main(["repair", str(broken_chain_file),
                     "--domain", "fixture.example",
                     "--include-root",
                     "-o", str(out_path)])
        assert code == 0
        fixed = load_pem_bundle(out_path.read_text())
        from repro.core import analyze_order

        assert analyze_order(fixed).compliant
        assert "removed_duplicate" in capsys.readouterr().out

    def test_repair_to_stdout(self, broken_chain_file, capsys):
        code = main(["repair", str(broken_chain_file),
                     "--domain", "fixture.example"])
        assert code == 0
        assert "BEGIN CERTIFICATE" in capsys.readouterr().out


class TestCapabilities:
    def test_single_client(self, capsys):
        code = main(["capabilities", "--client", "gnutls"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GnuTLS" in out
        assert "path_length_constraint" in out

    def test_extended_probes(self, capsys):
        code = main(["capabilities", "--client", "openssl", "--extended"])
        assert code == 0
        assert "deprecated_crypto" in capsys.readouterr().out


class TestScanAndDifferential:
    def test_scan_with_output(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        code = main(["scan", "--domains", "150", "--seed", "5",
                     "--output", str(corpus)])
        assert code == 0
        out = capsys.readouterr().out
        assert "non-compliant" in out
        from repro.measurement import load_observations

        assert len(load_observations(corpus)) >= 140

    def test_differential_summary(self, capsys):
        code = main(["differential", "--domains", "150", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "library failures" in out
        assert "attribution" in out


class TestScanNetworkMode:
    def test_simulated_network_scan(self, capsys):
        code = main(["scan", "--domains", "120", "--seed", "6",
                     "--simulate-network"])
        assert code == 0
        out = capsys.readouterr().out
        # per-vantage reachability is rendered, not a raw dict
        assert "vantage us" in out and "vantage au" in out
        assert "reachable" in out and "{" not in out.split("\n")[0]
        assert "Table 7" in out

    def test_scan_writes_metrics_and_trace(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main(["scan", "--domains", "120", "--seed", "6",
                     "--simulate-network",
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)])
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        for family in ("scan.attempts", "scan.success", "cache.hits",
                       "cache.misses", "chainbuilder.backtracks",
                       "aia.fetch.attempts", "compliance.verdict"):
            assert family in metrics, family
        vantages = {
            series["labels"].get("vantage")
            for series in metrics["scan.attempts"]["series"]
            if series["labels"]
        }
        assert {"us", "au"} <= vantages
        trace = json.loads(trace_path.read_text())
        assert trace, "expected at least one trace event"
        for event in trace:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
        names = {event["name"] for event in trace}
        assert "campaign.collect" in names and "campaign.analyze" in names


class TestScanCollectWorkers:
    """--collect-workers N must be invisible in every output: journal
    bytes, stdout report, and deterministic metrics families."""

    def run_scan(self, tmp_path, tag, workers, capsys):
        import json

        journal = tmp_path / f"{tag}.jsonl"
        metrics = tmp_path / f"{tag}-metrics.json"
        code = main(["scan", "--domains", "100", "--seed", "6",
                     "--simulate-network",
                     "--collect-workers", str(workers),
                     "--journal", str(journal),
                     "--metrics-out", str(metrics)])
        assert code == 0
        out = (capsys.readouterr().out
               .replace(str(journal), "<journal>")
               .replace(str(metrics), "<metrics>"))
        families = json.loads(metrics.read_text())
        deterministic = {
            name: family for name, family in families.items()
            if not name.startswith("phase.")
        }
        return journal.read_bytes(), out, deterministic

    def test_worker_count_is_invisible(self, tmp_path, capsys,
                                       monkeypatch):
        from repro.measurement.parallel import OVERSUBSCRIBE_ENV

        monkeypatch.setenv(OVERSUBSCRIBE_ENV, "1")
        one = self.run_scan(tmp_path, "one", 1, capsys)
        four = self.run_scan(tmp_path, "four", 4, capsys)
        assert four[0] == one[0]  # journal bytes
        assert four[1] == one[1]  # rendered report
        assert four[2] == one[2]  # deterministic metric families
        assert "collect.probe.scans" in one[2]


class TestStats:
    def test_stats_from_file(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        main(["scan", "--domains", "120", "--seed", "6",
              "--simulate-network", "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        code = main(["stats", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "scan.attempts (counter)" in out
        assert "vantage=us" in out
        assert "scan.wire_bytes (histogram)" in out

    def test_stats_fresh_run(self, capsys):
        code = main(["stats", "--domains", "120", "--seed", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== phase timing ==" in out
        assert "chains/s" in out
        assert "compliance.verdict (counter)" in out

    def test_missing_file_exits_two_with_message(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.json")])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "cannot read" in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code = main(["stats", str(path)])
        assert code == 2
        assert "not valid metrics JSON" in capsys.readouterr().err

    def test_wrong_shape_exits_two(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        code = main(["stats", str(path)])
        assert code == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_openmetrics_requires_file(self, capsys):
        code = main(["stats", "--openmetrics"])
        assert code == 2
        assert "requires a metrics file" in capsys.readouterr().err

    def test_openmetrics_conversion(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({
            "scan.attempts": {"type": "counter", "series": [
                {"labels": {"vantage": "us"}, "value": 3.0},
            ]},
        }))
        code = main(["stats", str(path), "--openmetrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert 'scan_attempts_total{vantage="us"} 3' in out
        assert out.endswith("# EOF\n")

    def test_openmetrics_histogram_from_sorted_json(self, tmp_path, capsys):
        """Histogram buckets stay in numeric order through the JSON file.

        'scan --metrics-out' writes with sort_keys=True, which orders
        bucket keys lexically (+Inf, 1, 10, 100, ..., 2); the exporter
        must still emit monotonic cumulative buckets ending at +Inf.
        """
        import json

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        hist = registry.histogram("scan.wire_bytes",
                                  buckets=(1, 2, 10, 100, 1000))
        for value in (0.5, 1.5, 5, 50, 500, 5000):
            hist.observe(value)
        path = tmp_path / "metrics.json"
        path.write_text(registry.to_json())
        assert json.loads(path.read_text())  # sanity: valid snapshot JSON
        code = main(["stats", str(path), "--openmetrics"])
        assert code == 0
        out = capsys.readouterr().out
        buckets = [line for line in out.splitlines()
                   if line.startswith("scan_wire_bytes_bucket")]
        bounds = [line.split('le="')[1].split('"')[0] for line in buckets]
        assert bounds == ["1", "2", "10", "100", "1000", "+Inf"]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == [1, 2, 3, 4, 5, 6]
        assert "scan_wire_bytes_count 6" in out


class TestScanJournal:
    def test_scan_writes_and_resumes_journal(self, tmp_path, capsys):
        from repro.obs import read_journal

        path = tmp_path / "run.jsonl"
        args = ["scan", "--domains", "120", "--seed", "6",
                "--journal", str(path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "journal events" in first
        _, events = read_journal(path)
        verdicts = [e for e in events if e["type"] == "verdict"]
        assert verdicts

        # same campaign: resumes; output tables stay identical
        assert main(args) == 0
        second = capsys.readouterr().out
        assert f"resuming {len(verdicts):,} recorded verdicts" in second
        def tables(text: str) -> str:
            return text[text.index("chains:"):text.index("wrote")]

        assert tables(first) == tables(second)

    def test_mismatched_journal_exits_two(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["scan", "--domains", "120", "--seed", "6",
                     "--journal", str(path)]) == 0
        capsys.readouterr()
        code = main(["scan", "--domains", "120", "--seed", "7",
                     "--journal", str(path)])
        assert code == 2
        assert "manifest mismatch" in capsys.readouterr().err

    def test_openmetrics_out(self, tmp_path, capsys):
        path = tmp_path / "metrics.om"
        assert main(["scan", "--domains", "120", "--seed", "6",
                     "--simulate-network",
                     "--openmetrics-out", str(path)]) == 0
        capsys.readouterr()
        text = path.read_text()
        assert "# TYPE scan_attempts counter" in text
        assert text.endswith("# EOF\n")


class TestDifferentialJournal:
    def test_rerun_does_not_duplicate_events(self, tmp_path, capsys):
        from repro.obs import read_journal

        path = tmp_path / "diff.jsonl"
        args = ["differential", "--domains", "120", "--seed", "6",
                "--journal", str(path)]
        assert main(args) == 0
        capsys.readouterr()
        _, events = read_journal(path)
        first = [e for e in events if e["type"] == "differential"]
        assert first and all(e.get("chain_key") for e in first)

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "already recorded" in out
        _, events = read_journal(path)
        second = [e for e in events if e["type"] == "differential"]
        assert second == first

    def test_mismatched_journal_exits_two(self, tmp_path, capsys):
        path = tmp_path / "diff.jsonl"
        assert main(["differential", "--domains", "120", "--seed", "6",
                     "--journal", str(path)]) == 0
        capsys.readouterr()
        code = main(["differential", "--domains", "120", "--seed", "7",
                     "--journal", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "manifest mismatch" in err
        assert "Traceback" not in err


class TestExplain:
    def test_explain_from_fresh_ecosystem(self, capsys):
        # pick a domain deterministically from the same generation
        from repro.webpki import Ecosystem, EcosystemConfig

        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=120, seed=6)
        )
        domain = ecosystem.observations()[0][0]
        code = main(["explain", domain, "--domains", "120", "--seed", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"domain       : {domain}" in out
        assert "evidence:" in out

    def test_explain_from_journal(self, tmp_path, capsys):
        import json

        path = tmp_path / "run.jsonl"
        assert main(["scan", "--domains", "200", "--seed", "6",
                     "--journal", str(path)]) == 0
        capsys.readouterr()
        domain = None
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                event = json.loads(line)
                if (event.get("type") == "verdict"
                        and event["report"]["completeness"]["category"]
                        == "incomplete"):
                    domain = event["domain"]
                    break
        assert domain is not None, "corpus should contain incompleteness"
        code = main(["explain", domain, "--journal", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[R3.incomplete] violation" in out
        assert "chain (presented order):" in out

    def test_unknown_domain_exits_two(self, tmp_path, capsys):
        assert main(["explain", "no-such.example",
                     "--domains", "120", "--seed", "6"]) == 2
        assert "not in the generated ecosystem" in (
            capsys.readouterr().err
        )

    def test_missing_journal_exits_two(self, tmp_path, capsys):
        code = main(["explain", "x.example",
                     "--journal", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_explain_differential_attribution(self, tmp_path, capsys):
        import json

        path = tmp_path / "diff.jsonl"
        assert main(["differential", "--domains", "200", "--seed", "6",
                     "--journal", str(path)]) == 0
        capsys.readouterr()
        domain = None
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                event = json.loads(line)
                if (event.get("type") == "differential"
                        and event.get("attribution")):
                    domain = event["domain"]
                    break
        assert domain is not None, "corpus should contain discrepancies"
        code = main(["explain", domain, "--journal", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "differential :" in out
        assert "attribution:" in out


class TestCapabilitiesMatrix:
    def test_full_matrix_with_recommended(self, capsys):
        code = main(["capabilities", "--recommended"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Recommended" in out
        assert "MbedTLS" in out


class TestScanWorkers:
    def test_workers_tables_match_sequential(self, capsys):
        base = ["scan", "--domains", "120", "--seed", "6"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "verdict cache:" in parallel
        assert "hit rate" in parallel

        def tables(text: str) -> str:
            return text[text.index("chains:"):]

        assert tables(parallel) == tables(plain)

    def test_workers_journal_is_byte_identical(self, tmp_path, capsys):
        seq = tmp_path / "seq.jsonl"
        par = tmp_path / "par.jsonl"
        assert main(["scan", "--domains", "120", "--seed", "6",
                     "--journal", str(seq)]) == 0
        assert main(["scan", "--domains", "120", "--seed", "6",
                     "--journal", str(par), "--workers", "2",
                     "--journal-flush-every", "8"]) == 0
        capsys.readouterr()
        assert par.read_bytes() == seq.read_bytes()


class TestDifferentialWorkers:
    def test_workers_use_cold_cache_model(self, capsys):
        assert main(["differential", "--domains", "120", "--seed", "6",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "cold (non-learning) intermediate cache" in out
        assert "attribution" in out


@pytest.fixture(scope="module")
def journaled_scan(tmp_path_factory):
    """One journaled reference scan shared by the report/diff tests."""
    tmp = tmp_path_factory.mktemp("cli-report")
    journal = tmp / "run.jsonl"
    metrics = tmp / "metrics.json"
    report = tmp / "report.json"
    code = main(["scan", "--domains", "100", "--seed", "833",
                 "--simulate-network",
                 "--journal", str(journal),
                 "--metrics-out", str(metrics),
                 "--report-out", str(report)])
    assert code == 0
    return journal, metrics, report


class TestReportCommand:
    def test_report_to_stdout(self, journaled_scan, capsys):
        journal, _, _ = journaled_scan
        code = main(["report", str(journal)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run report — campaign" in out
        assert "Vantage reachability" in out
        assert "Rule breakdown" in out
        # no metrics snapshot given: no timing-dependent sections
        assert "Phase resources" not in out

    def test_report_with_metrics_adds_phases(self, journaled_scan,
                                             capsys):
        journal, metrics, _ = journaled_scan
        code = main(["report", str(journal),
                     "--metrics", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase resources" in out
        assert "collect" in out and "analyze" in out

    def test_report_formats(self, journaled_scan, tmp_path, capsys):
        journal, _, _ = journaled_scan
        html = tmp_path / "report.html"
        code = main(["report", str(journal), "--out", str(html)])
        assert code == 0
        text = html.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text
        code = main(["report", str(journal), "--format", "markdown"])
        assert code == 0
        assert "| rule |" in capsys.readouterr().out

    def test_report_json_out_roundtrips(self, journaled_scan,
                                        tmp_path, capsys):
        import json

        from repro.obs import RunReport

        journal, _, _ = journaled_scan
        json_out = tmp_path / "report.json"
        code = main(["report", str(journal),
                     "--json-out", str(json_out)])
        assert code == 0
        payload = json.loads(json_out.read_text())
        restored = RunReport.from_dict(payload)
        assert restored.to_dict() == payload

    def test_missing_journal_exits_two(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "report" in capsys.readouterr().err

    def test_corrupt_journal_exits_two(self, journaled_scan, tmp_path,
                                       capsys):
        journal, _, _ = journaled_scan
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text(journal.read_text()
                           + '{"type":"collection","domains":1}\n')
        code = main(["report", str(corrupt)])
        assert code == 2
        assert "corrupt journal" in capsys.readouterr().err


class TestScanReportOut:
    def test_scan_report_out_requires_journal(self, tmp_path, capsys):
        code = main(["scan", "--domains", "60", "--seed", "5",
                     "--report-out", str(tmp_path / "r.json")])
        assert code == 2
        assert "--journal" in capsys.readouterr().err

    def test_scan_report_out_includes_metrics(self, journaled_scan):
        import json

        _, _, report = journaled_scan
        payload = json.loads(report.read_text())
        assert payload["report_version"] == 1
        assert payload["verdicts"]["total"] > 0
        # built with the live registry snapshot: phases present
        assert payload["phases"]


class TestDiffRuns:
    def test_identical_journals_exit_zero(self, journaled_scan,
                                          tmp_path, capsys):
        journal, _, _ = journaled_scan
        twin = tmp_path / "twin.jsonl"
        code = main(["scan", "--domains", "100", "--seed", "833",
                     "--simulate-network", "--journal", str(twin)])
        assert code == 0
        capsys.readouterr()
        code = main(["diff-runs", str(journal), str(twin)])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-domain verdicts identical" in out
        assert "exit 0" in out

    def test_report_inputs_and_json_out(self, journaled_scan,
                                        tmp_path, capsys):
        import json

        _, _, report = journaled_scan
        json_out = tmp_path / "diff.json"
        code = main(["diff-runs", str(report), str(report),
                     "--json-out", str(json_out)])
        assert code == 0
        payload = json.loads(json_out.read_text())
        assert payload["exit_code"] == 0
        assert payload["verdict_flips"] == []

    def test_flipped_verdict_exits_one_naming_rules(
        self, journaled_scan, tmp_path, capsys
    ):
        import json

        _, _, report = journaled_scan
        payload = json.loads(report.read_text())
        flipped_domain = None
        for domain, dv in payload["domain_verdicts"].items():
            if dv["compliant"]:
                dv["compliant"] = False
                dv["rules"] = ["R3.incomplete"]
                flipped_domain = domain
                break
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(payload))
        code = main(["diff-runs", str(report), str(mutated)])
        assert code == 1
        out = capsys.readouterr().out
        assert flipped_domain in out
        assert "R3.incomplete" in out
        assert "exit 1" in out

    def test_threshold_breach_exits_two(self, journaled_scan, capsys):
        import json

        _, metrics, report = journaled_scan
        # compare the metrics-bearing report against a journal-only
        # rebuild of itself: every metric total disappears -> breach
        payload = json.loads(report.read_text())
        assert payload["metric_totals"]
        code = main(["diff-runs", str(report), str(report),
                     "--threshold", "phase.*=0",
                     "--threshold", "scan.success=0"])
        assert code == 0  # identical report: nothing breaches
        capsys.readouterr()
        mutated = dict(payload)
        mutated["metric_totals"] = dict(payload["metric_totals"])
        mutated["metric_totals"]["scan.success"] = (
            payload["metric_totals"]["scan.success"] * 2
        )
        import pathlib

        other = pathlib.Path(str(report) + ".breach.json")
        other.write_text(json.dumps(mutated))
        code = main(["diff-runs", str(report), str(other),
                     "--threshold", "scan.success=10"])
        assert code == 2
        assert "BREACH" in capsys.readouterr().out

    def test_bad_threshold_exits_three(self, journaled_scan, capsys):
        journal, _, _ = journaled_scan
        code = main(["diff-runs", str(journal), str(journal),
                     "--threshold", "nonsense"])
        assert code == 3
        assert "NAME=PCT" in capsys.readouterr().err

    def test_unreadable_input_exits_three(self, tmp_path, capsys):
        code = main(["diff-runs", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")])
        assert code == 3


class TestStatsTop:
    def test_top_limits_rows(self, tmp_path, capsys):
        import json

        snapshot = {
            "a.big": {"type": "counter",
                      "series": [{"labels": {}, "value": 100.0}]},
            "b.mid": {"type": "counter",
                      "series": [{"labels": {}, "value": 50.0}]},
            "c.small": {"type": "counter",
                        "series": [{"labels": {}, "value": 1.0}]},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        code = main(["stats", str(path), "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a.big" in out and "b.mid" in out
        assert "c.small" not in out
        # largest first
        assert out.index("a.big") < out.index("b.mid")

    def test_numeric_cells_right_aligned(self, tmp_path, capsys):
        import json

        snapshot = {
            "wide": {"type": "counter",
                     "series": [{"labels": {}, "value": 123456.0}]},
            "narrow": {"type": "counter",
                       "series": [{"labels": {}, "value": 7.0}]},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        assert main(["stats", str(path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        wide = next(line for line in lines if line.startswith("wide"))
        narrow = next(line for line in lines
                      if line.startswith("narrow"))
        # right-aligned: both value cells end at the same column
        assert wide.rstrip().endswith("123,456")
        assert narrow.rstrip().endswith("7")
        assert len(wide.rstrip()) == len(narrow.rstrip())


class TestExplainValidatesJournal:
    def test_corrupt_journal_exits_two_cleanly(self, journaled_scan,
                                               tmp_path, capsys):
        journal, _, _ = journaled_scan
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text(journal.read_text()
                           + '{"type":"collection","domains":2}\n')
        code = main(["explain", "any.example",
                     "--journal", str(corrupt)])
        assert code == 2
        err = capsys.readouterr().err
        assert "corrupt journal" in err
        assert "one-summary" in err


class TestScanServeAndHealth:
    BASE = ["scan", "--domains", "120", "--seed", "6",
            "--simulate-network"]

    def test_bad_serve_spec_exits_two(self, capsys):
        code = main(self.BASE + ["--serve", "not-a-port"])
        assert code == 2
        assert "not a port number" in capsys.readouterr().err

    def test_bad_health_spec_exits_two(self, capsys):
        code = main(self.BASE + ["--health", "scan.error_ratio"])
        assert code == 2
        assert "not of the form" in capsys.readouterr().err

    def test_health_pass_prints_ok(self, capsys):
        code = main(self.BASE + ["--health", "scan.failure_ratio<=1.0",
                                 "--health", "snapshot.write_errors=0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "health: ok (2 checks)" in out

    def test_health_breach_exits_three(self, capsys):
        # a scan that succeeds at all breaches "no successful scans"
        code = main(self.BASE + ["--health", "scan.success=0"])
        assert code == 3
        captured = capsys.readouterr()
        assert "health: FAIL scan.success" in captured.err
        assert "rule scan.success=0" in captured.err
        # the run itself still rendered its tables before the verdict
        assert "Table 7" in captured.out

    def test_unmatched_pattern_rule_warns_but_passes(self, capsys):
        code = main(self.BASE + ["--health", "no.such.family.*<=1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "matched no metric" in captured.err
        assert "health: ok" in captured.out

    def test_serve_prints_url_and_preserves_journal_bytes(
        self, tmp_path, capsys
    ):
        plain = tmp_path / "plain.jsonl"
        served = tmp_path / "served.jsonl"
        assert main(self.BASE + ["--journal", str(plain),
                                 "--workers", "2"]) == 0
        capsys.readouterr()
        assert main(self.BASE + ["--journal", str(served),
                                 "--workers", "2",
                                 "--serve", "127.0.0.1:0"]) == 0
        out = capsys.readouterr().out
        assert "serving telemetry on http://127.0.0.1:" in out
        # a scraped run's journal is byte-identical to an unscraped one
        assert served.read_bytes() == plain.read_bytes()

    def test_serve_bind_failure_exits_two(self, tmp_path, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
            code = main(self.BASE + ["--serve", f"127.0.0.1:{port}"])
        assert code == 2
        assert "cannot serve" in capsys.readouterr().err


class TestMetricsEndpointMatchesStats:
    def test_scrape_is_byte_identical_to_stats_openmetrics(
        self, tmp_path, capsys
    ):
        import urllib.request

        from repro import obs

        registry = obs.MetricsRegistry()
        registry.counter("scan.success", vantage="us").inc(3)
        registry.histogram("scan.wire_bytes", buckets=(10, 100)).observe(42)
        metrics_file = tmp_path / "metrics.json"
        metrics_file.write_text(registry.to_json())

        with obs.TelemetryServer(registry) as server:
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=5
            ) as response:
                scraped = response.read().decode("utf-8")
        assert main(["stats", str(metrics_file), "--openmetrics"]) == 0
        assert capsys.readouterr().out == scraped


class TestWatchCommand:
    def test_watch_finished_journal_once(self, journaled_scan, capsys):
        journal, _, _ = journaled_scan
        code = main(["watch", str(journal), "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("watch finished")
        assert "100.0%" in out

    def test_watch_missing_journal_exits_two(self, tmp_path, capsys):
        code = main(["watch", str(tmp_path / "nope.jsonl"), "--once"])
        assert code == 2
        assert "watch:" in capsys.readouterr().err

    def test_watch_http_endpoint_once(self, capsys):
        from repro import obs

        registry = obs.MetricsRegistry()
        status = obs.RunStatus()
        status.begin_phase("collect[us]", 10)
        status.advance(4)
        with obs.TelemetryServer(registry, status=status) as server:
            code = main(["watch", server.url, "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "watch collect[us] 4/10" in out


class TestScanCacheDir:
    """Warm-start scans through ``--cache-dir`` are byte-identical.

    One cold run populates the store; every warm variant — plain,
    ``--workers 4``, ``--shard-size`` — must reproduce the cold run's
    journal verdict lines, rendered report, and printed tables exactly.
    """

    @staticmethod
    def verdict_lines(journal) -> list[bytes]:
        return [
            line for line in journal.read_bytes().splitlines()
            if line.startswith(b'{"type":"verdict"')
        ]

    @staticmethod
    def tables(text: str) -> str:
        """The deterministic stdout slice: tables, not stat lines."""
        text = text[text.index("chains:"):]
        wrote = text.find("wrote ")
        return text if wrote < 0 else text[:wrote]

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        import io
        from contextlib import redirect_stdout

        tmp = tmp_path_factory.mktemp("cli-cache")
        store = tmp / "verdict-cache"
        variants = {
            "cold": [],
            "warm": [],
            "warm-workers": ["--workers", "4"],
            "warm-shards": ["--shard-size", "80"],
        }
        outputs, journals, reports = {}, {}, {}
        for name, extra in variants.items():
            journal = tmp / f"{name}.jsonl"
            buffer = io.StringIO()
            with redirect_stdout(buffer):
                assert main(["scan", "--domains", "200", "--seed", "833",
                             "--simulate-network",
                             "--cache-dir", str(store),
                             "--journal", str(journal)] + extra) == 0
                report = tmp / f"{name}-report.json"
                assert main(["report", str(journal),
                             "--out", str(report)]) == 0
            outputs[name] = buffer.getvalue()
            journals[name] = journal
            reports[name] = report.read_bytes()
        return store, outputs, journals, reports

    def test_warm_runs_hit_for_every_chain(self, runs):
        _, outputs, _, _ = runs
        assert " / 0 misses / 0 writes" not in outputs["cold"]
        for name in ("warm", "warm-workers", "warm-shards"):
            assert " / 0 misses / 0 writes" in outputs[name], name

    def test_journal_verdicts_byte_identical(self, runs):
        _, _, journals, _ = runs
        cold = self.verdict_lines(journals["cold"])
        assert cold
        for name in ("warm", "warm-workers", "warm-shards"):
            assert self.verdict_lines(journals[name]) == cold, name

    def test_reports_byte_identical(self, runs):
        _, _, _, reports = runs
        for name in ("warm", "warm-workers", "warm-shards"):
            assert reports[name] == reports["cold"], name

    def test_tables_byte_identical(self, runs):
        _, outputs, _, _ = runs
        cold = self.tables(outputs["cold"])
        for name in ("warm", "warm-workers", "warm-shards"):
            assert self.tables(outputs[name]) == cold, name

    def test_manifest_records_cache_identity(self, runs):
        import json

        store, _, journals, reports = runs
        manifest = json.loads(
            journals["cold"].read_bytes().splitlines()[0]
        )
        meta = json.loads((store / "meta.json").read_text())
        assert manifest["cache"] == {
            "store_id": meta["store_id"],
            "schema_version": meta["schema_version"],
        }
        report = json.loads(reports["cold"])
        assert report["identity"]["cache"] == manifest["cache"]

    def test_cache_stats_and_verify(self, runs, capsys):
        store, _, _, _ = runs
        assert main(["cache", "stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "reports : " in out
        assert main(["cache", "verify", str(store)]) == 0
        assert capsys.readouterr().out.startswith("verify: ok")
        assert main(["cache", "compact", str(store)]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_verify_reports_truncation(self, runs, capsys):
        store, _, _, _ = runs
        segment = sorted((store / "segments").glob("*.seg"))[-1]
        data = segment.read_bytes()
        segment.write_bytes(data + b'{"kind":"report","sch')
        try:
            assert main(["cache", "verify", str(store)]) == 1
            out = capsys.readouterr().out
            assert "torn final record" in out
        finally:
            segment.write_bytes(data)
        assert main(["cache", "verify", str(store)]) == 0

    def test_verify_missing_store_exits_two(self, tmp_path, capsys):
        assert main(["cache", "verify", str(tmp_path / "absent")]) == 2
        assert "cache:" in capsys.readouterr().err


class TestDifferentialCacheDir:
    def test_warm_run_matches_cold(self, tmp_path, capsys):
        base = ["differential", "--domains", "80", "--seed", "833",
                "--cache-dir", str(tmp_path / "vs")]
        assert main(base) == 0
        cold = capsys.readouterr().out
        assert "cold (non-learning) intermediate cache" in cold
        assert main(base) == 0
        warm = capsys.readouterr().out
        assert " / 0 misses / 0 writes" in warm

        def stats(text: str) -> str:
            return text[text.index("chains evaluated"):]

        assert stats(warm) == stats(cold)
