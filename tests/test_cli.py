"""The command-line interface."""

import pytest

from repro.cli import main
from repro.x509 import load_pem_bundle, to_pem_bundle


@pytest.fixture()
def chain_file(tmp_path, hierarchy, leaf):
    path = tmp_path / "chain.pem"
    path.write_text(to_pem_bundle(
        hierarchy.chain_for(leaf, include_root=True)
    ))
    return path


@pytest.fixture()
def broken_chain_file(tmp_path, hierarchy, leaf):
    from repro.ca import malform

    broken = malform.duplicate_leaf(
        malform.reverse_intermediates(
            hierarchy.chain_for(leaf, include_root=True)
        )
    )
    path = tmp_path / "broken.pem"
    path.write_text(to_pem_bundle(broken))
    return path


class TestAnalyze:
    def test_compliant_chain_exits_zero(self, chain_file, capsys):
        code = main(["analyze", str(chain_file),
                     "--domain", "fixture.example"])
        assert code == 0
        out = capsys.readouterr().out
        assert "COMPLIANT" in out
        assert "correctly_placed_matched" in out

    def test_broken_chain_exits_nonzero(self, broken_chain_file, capsys):
        code = main(["analyze", str(broken_chain_file),
                     "--domain", "fixture.example"])
        assert code == 1
        out = capsys.readouterr().out
        assert "NON-COMPLIANT" in out
        assert "reversed_sequences" in out

    def test_roots_file(self, tmp_path, hierarchy, leaf, capsys):
        from repro.x509 import to_pem

        chain_path = tmp_path / "noroot.pem"
        chain_path.write_text(to_pem_bundle(hierarchy.chain_for(leaf)))
        roots_path = tmp_path / "roots.pem"
        roots_path.write_text(to_pem(hierarchy.root.certificate))
        code = main(["analyze", str(chain_path),
                     "--domain", "fixture.example",
                     "--roots", str(roots_path)])
        assert code == 0


class TestRepair:
    def test_repair_writes_compliant_bundle(self, broken_chain_file,
                                            tmp_path, capsys):
        out_path = tmp_path / "fixed.pem"
        code = main(["repair", str(broken_chain_file),
                     "--domain", "fixture.example",
                     "--include-root",
                     "-o", str(out_path)])
        assert code == 0
        fixed = load_pem_bundle(out_path.read_text())
        from repro.core import analyze_order

        assert analyze_order(fixed).compliant
        assert "removed_duplicate" in capsys.readouterr().out

    def test_repair_to_stdout(self, broken_chain_file, capsys):
        code = main(["repair", str(broken_chain_file),
                     "--domain", "fixture.example"])
        assert code == 0
        assert "BEGIN CERTIFICATE" in capsys.readouterr().out


class TestCapabilities:
    def test_single_client(self, capsys):
        code = main(["capabilities", "--client", "gnutls"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GnuTLS" in out
        assert "path_length_constraint" in out

    def test_extended_probes(self, capsys):
        code = main(["capabilities", "--client", "openssl", "--extended"])
        assert code == 0
        assert "deprecated_crypto" in capsys.readouterr().out


class TestScanAndDifferential:
    def test_scan_with_output(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        code = main(["scan", "--domains", "150", "--seed", "5",
                     "--output", str(corpus)])
        assert code == 0
        out = capsys.readouterr().out
        assert "non-compliant" in out
        from repro.measurement import load_observations

        assert len(load_observations(corpus)) >= 140

    def test_differential_summary(self, capsys):
        code = main(["differential", "--domains", "150", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "library failures" in out
        assert "attribution" in out


class TestScanNetworkMode:
    def test_simulated_network_scan(self, capsys):
        code = main(["scan", "--domains", "120", "--seed", "6",
                     "--simulate-network"])
        assert code == 0
        out = capsys.readouterr().out
        # per-vantage reachability is rendered, not a raw dict
        assert "vantage us" in out and "vantage au" in out
        assert "reachable" in out and "{" not in out.split("\n")[0]
        assert "Table 7" in out

    def test_scan_writes_metrics_and_trace(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main(["scan", "--domains", "120", "--seed", "6",
                     "--simulate-network",
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)])
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        for family in ("scan.attempts", "scan.success", "cache.hits",
                       "cache.misses", "chainbuilder.backtracks",
                       "aia.fetch.attempts", "compliance.verdict"):
            assert family in metrics, family
        vantages = {
            series["labels"].get("vantage")
            for series in metrics["scan.attempts"]["series"]
            if series["labels"]
        }
        assert {"us", "au"} <= vantages
        trace = json.loads(trace_path.read_text())
        assert trace, "expected at least one trace event"
        for event in trace:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
        names = {event["name"] for event in trace}
        assert "campaign.collect" in names and "campaign.analyze" in names


class TestStats:
    def test_stats_from_file(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        main(["scan", "--domains", "120", "--seed", "6",
              "--simulate-network", "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        code = main(["stats", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "scan.attempts (counter)" in out
        assert "vantage=us" in out
        assert "scan.wire_bytes (histogram)" in out

    def test_stats_fresh_run(self, capsys):
        code = main(["stats", "--domains", "120", "--seed", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== phase timing ==" in out
        assert "chains/s" in out
        assert "compliance.verdict (counter)" in out


class TestCapabilitiesMatrix:
    def test_full_matrix_with_recommended(self, capsys):
        code = main(["capabilities", "--recommended"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Recommended" in out
        assert "MbedTLS" in out
