"""``repro watch``: frame sources, rendering, and the poll loop."""

import io

import pytest

from repro.measurement import Campaign
from repro.obs import RunJournal
from repro.obs.health import HealthMonitor, parse_health_rule
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import RunStatus, TelemetryServer
from repro.obs.watch import (
    HttpSource,
    JournalSource,
    SourceError,
    render_frame,
    watch,
    _plain_line,
)
from repro.webpki import Ecosystem, EcosystemConfig


@pytest.fixture(scope="module")
def journal_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("watch") / "run.jsonl"
    ecosystem = Ecosystem.generate(EcosystemConfig(n_domains=30, seed=11))
    campaign = Campaign(ecosystem)
    with RunJournal.create(path, campaign.manifest()) as journal:
        collection = campaign.collect(journal=journal)
        campaign.analyze(collection.observations, journal=journal)
    return path


class FakeSource:
    """Scripted frames; an Exception entry raises instead."""

    label = "fake"

    def __init__(self, frames):
        self.frames = list(frames)
        self.ever_connected = False

    def frame(self):
        item = self.frames.pop(0)
        if isinstance(item, Exception):
            raise item
        self.ever_connected = True
        return item


def frame(**overrides):
    base = {
        "source": "fake", "phase": "analyze", "finished": False,
        "done": 50, "total": 200, "rate": 100.0,
        "health_ok": None, "health_failures": (),
        "vantages": [], "verdicts": None, "rules": [],
        "retries": None, "breaker_trips": None, "scan_errors": 0,
    }
    base.update(overrides)
    return base


class TestJournalSource:
    def test_finished_run_frame(self, journal_path):
        source = JournalSource(journal_path)
        got = source.frame()
        assert got["phase"] == "finished" and got["finished"]
        assert got["done"] == got["total"] > 0
        assert got["verdicts"]["total"] == got["done"]
        assert (got["verdicts"]["compliant"]
                + got["verdicts"]["noncompliant"]) == got["done"]
        assert {v["vantage"] for v in got["vantages"]} == {"us", "au"}
        for vantage in got["vantages"]:
            assert 0 < vantage["reached"] <= vantage["attempted"]
            assert vantage["degraded"] is None
        # violations surface as (rule_id, domains), hottest first
        counts = [count for _, count in got["rules"]]
        assert counts == sorted(counts, reverse=True)

    def test_rate_from_verdict_delta(self, journal_path):
        now = [0.0]
        source = JournalSource(journal_path, clock=lambda: now[0])
        first = source.frame()
        assert first["rate"] == 0.0  # no previous poll to diff against
        now[0] = 2.0
        second = source.frame()
        assert second["rate"] == 0.0  # finished journal: no new verdicts
        assert second["done"] == first["done"]

    def test_mid_collect_journal_reads_as_collect_phase(self, tmp_path):
        """Scan events but no ``collection`` summary yet: still collecting."""
        path = tmp_path / "collect.jsonl"
        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=10, seed=2)
        )
        campaign = Campaign(ecosystem)
        with RunJournal.create(path, campaign.manifest()) as journal:
            campaign.collect(journal=journal)
        kept = [line for line in path.read_text().splitlines()
                if not line.startswith('{"type":"collection"')]
        path.write_text("\n".join(kept) + "\n")
        got = JournalSource(path).frame()
        assert got["phase"] == "collect"
        assert not got["finished"]

    def test_collect_finished_journal_reads_as_analyze_phase(self, tmp_path):
        """The ``collection`` summary lands: next phase is analysis."""
        path = tmp_path / "collected.jsonl"
        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=10, seed=2)
        )
        campaign = Campaign(ecosystem)
        with RunJournal.create(path, campaign.manifest()) as journal:
            campaign.collect(journal=journal)
        got = JournalSource(path).frame()
        assert got["phase"] == "analyze"
        assert got["done"] == 0 and got["total"] > 0
        assert not got["finished"]

    def test_missing_journal_raises_source_error(self, tmp_path):
        with pytest.raises(SourceError):
            JournalSource(tmp_path / "nope.jsonl").frame()


class TestHttpSource:
    def test_frame_against_live_server(self, journal_path):
        registry = MetricsRegistry()
        registry.counter("scan.error").inc(9)
        registry.counter("scan.attempts").inc(10)
        status = RunStatus()
        status.begin_phase("analyze", 200)
        status.advance(50)
        status.mark_degraded("au", "vantage outage")
        monitor = HealthMonitor([parse_health_rule("scan.error_ratio<=0.1")])
        with TelemetryServer(
            registry, health=monitor, status=status,
            journal_path=journal_path,
        ) as server:
            source = HttpSource(server.url)
            got = source.frame()
        assert source.ever_connected
        assert got["phase"] == "analyze"
        assert (got["done"], got["total"]) == (50, 200)
        assert got["health_ok"] is False
        assert any("scan.error_ratio" in failure
                   for failure in got["health_failures"])
        # /report enriches vantages and verdicts beyond /progress
        degraded = {v["vantage"]: v["degraded"] for v in got["vantages"]}
        assert set(degraded) == {"us", "au"}
        assert got["verdicts"]["total"] > 0

    def test_unreachable_server_raises_source_error(self):
        source = HttpSource("http://127.0.0.1:9")  # discard port
        with pytest.raises(SourceError):
            source.frame()
        assert not source.ever_connected


class TestRendering:
    def test_render_frame_lines(self):
        lines = render_frame(frame(
            health_ok=False, health_failures=("scan.error_ratio=0.3 "
                                              "(rule scan.error_ratio<=0.1)",),
            vantages=[
                {"vantage": "us", "reached": 90, "attempted": 100,
                 "degraded": None},
                {"vantage": "au", "reached": 0, "attempted": 100,
                 "degraded": "breaker open"},
            ],
            verdicts={"total": 50, "compliant": 40, "noncompliant": 10},
            rules=[("R3.1", 7), ("R2.2", 3)],
            retries=4, scan_errors=2,
        ))
        text = "\n".join(lines)
        assert lines[0] == "repro watch — fake"
        assert "analyze" in lines[1] and "50/200" in lines[1]
        assert "health   : FAILING — scan.error_ratio=0.3" in text
        assert "au 0/100 (0.0%) DEGRADED(breaker open)" in text
        assert "50 total — 40 compliant / 10 non-compliant" in text
        assert "R3.1×7  R2.2×3" in text
        assert "retries 4" in text and "scan errors 2" in text

    def test_render_frame_omits_empty_sections(self):
        lines = render_frame(frame())
        assert len(lines) == 2  # header + phase only

    def test_plain_line(self):
        line = _plain_line(frame(
            health_ok=False,
            vantages=[{"vantage": "au", "degraded": "outage"}],
        ))
        assert line.startswith("watch analyze 50/200")
        assert "health=FAILING" in line
        assert "degraded=au" in line

    def test_plain_line_healthy_has_no_tags(self):
        assert "health" not in _plain_line(frame(health_ok=True))


class TestWatchLoop:
    def test_finished_frame_ends_the_loop_with_zero(self):
        stream = io.StringIO()
        source = FakeSource([frame(), frame(finished=True,
                                            phase="finished")])
        slept = []
        code = watch(source, interval=0.5, stream=stream,
                     force_tty=False, sleep=slept.append)
        assert code == 0
        assert slept == [0.5]
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("watch analyze")
        assert lines[1].startswith("watch finished")

    def test_tty_mode_repaints_in_place(self):
        stream = io.StringIO()
        source = FakeSource([frame(), frame(finished=True)])
        watch(source, stream=stream, force_tty=True, sleep=lambda _: None)
        text = stream.getvalue()
        assert "repro watch — fake" in text
        assert "\x1b[2K" in text          # erase-line per painted row
        assert "\x1b[2F" in text          # rewind over the 2-line frame

    def test_once_samples_a_single_frame(self):
        stream = io.StringIO()
        code = watch(FakeSource([frame()]), once=True, stream=stream,
                     force_tty=False)
        assert code == 0
        assert len(stream.getvalue().splitlines()) == 1

    def test_server_vanishing_after_contact_is_a_clean_exit(self):
        source = FakeSource([frame(), SourceError("connection refused")])
        code = watch(source, stream=io.StringIO(), force_tty=False,
                     sleep=lambda _: None)
        assert code == 0

    def test_never_connecting_is_exit_2(self, capsys):
        source = FakeSource([SourceError("no"), SourceError("still no")])
        code = watch(source, stream=io.StringIO(), force_tty=False,
                     sleep=lambda _: None, max_polls=2)
        assert code == 2
        assert "still no" in capsys.readouterr().err

    def test_transient_startup_errors_are_retried(self):
        stream = io.StringIO()
        source = FakeSource([SourceError("not up yet"),
                             frame(finished=True)])
        code = watch(source, stream=stream, force_tty=False,
                     sleep=lambda _: None)
        assert code == 0
        assert stream.getvalue().startswith("watch")

    def test_max_polls_bounds_an_unfinished_run(self):
        stream = io.StringIO()
        source = FakeSource([frame(), frame(), frame()])
        code = watch(source, stream=stream, force_tty=False,
                     sleep=lambda _: None, max_polls=3)
        assert code == 0
        assert len(stream.getvalue().splitlines()) == 3
