"""The timer-based sampling profiler and phase/RSS attribution."""

import time

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import SamplingProbe, phase_scope, read_rss_bytes
from repro.obs.trace import NULL_TRACER, Tracer


class TestDeterministicSampling:
    def test_sample_once_records_active_stack(self):
        tracer = Tracer()
        probe = SamplingProbe(tracer)
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert probe.sample_once() == 1
        assert probe.hotspots() == [(("outer", "inner"), 1)]

    def test_idle_samples_counted_separately(self):
        probe = SamplingProbe(Tracer())
        assert probe.sample_once() == 0
        snapshot = probe.snapshot()
        assert snapshot["idle_samples"] == 1
        assert snapshot["total_samples"] == 1
        assert snapshot["stacks"] == {}

    def test_hotspots_ordered_by_frequency(self):
        tracer = Tracer()
        probe = SamplingProbe(tracer)
        with tracer.span("hot"):
            for _ in range(3):
                probe.sample_once()
        with tracer.span("cold"):
            probe.sample_once()
        assert probe.hotspots() == [(("hot",), 3), (("cold",), 1)]

    def test_snapshot_keys_are_joined_stacks(self):
        tracer = Tracer()
        probe = SamplingProbe(tracer)
        with tracer.span("a"):
            with tracer.span("b"):
                probe.sample_once()
        assert probe.snapshot()["stacks"] == {"a > b": 1}


class TestTimerThread:
    def test_background_sampling_observes_work(self):
        tracer = Tracer()
        with SamplingProbe(tracer, interval=0.002) as probe:
            with tracer.span("work"):
                time.sleep(0.05)
        assert probe.total_samples > 0
        hotspots = dict(probe.hotspots())
        assert hotspots.get(("work",), 0) > 0

    def test_stop_is_idempotent_and_restartable(self):
        probe = SamplingProbe(Tracer(), interval=0.001)
        probe.start()
        with pytest.raises(RuntimeError):
            probe.start()
        probe.stop()
        probe.stop()
        probe.start()
        probe.stop()

    def test_null_tracer_yields_only_idle_samples(self):
        with SamplingProbe(NULL_TRACER, interval=0.001) as probe:
            time.sleep(0.01)
        assert probe.hotspots() == []
        assert probe.snapshot()["idle_samples"] == probe.total_samples

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            SamplingProbe(NULL_TRACER, interval=0)


class TestRssSampling:
    def test_read_rss_bytes_on_linux(self):
        rss = read_rss_bytes()
        if rss is None:
            pytest.skip("no /proc/self/statm on this platform")
        assert isinstance(rss, int)
        assert rss > 1 << 20  # a Python process is at least a MiB

    def test_probe_tracks_peak_and_publishes_gauge(self):
        if read_rss_bytes() is None:
            pytest.skip("no /proc/self/statm on this platform")
        with obs.instrumented() as (registry, _):
            probe = SamplingProbe(Tracer(), sample_rss=True)
            probe.sample_once()
            assert probe.rss_peak > 0
            snapshot = probe.snapshot()
            assert snapshot["rss"]["samples"] == 1
            assert (snapshot["rss"]["peak_bytes"]
                    >= snapshot["rss"]["last_bytes"] > 0)
            assert registry.total("probe.rss") > 0

    def test_disabled_by_default(self):
        probe = SamplingProbe(Tracer())
        probe.sample_once()
        assert probe.rss_peak == 0
        assert "rss" not in probe.snapshot()

    def test_graceful_noop_without_procfs(self, monkeypatch):
        monkeypatch.setattr("repro.obs.probe.read_rss_bytes",
                            lambda: None)
        probe = SamplingProbe(Tracer(), sample_rss=True)
        probe.sample_once()  # must not raise
        assert probe.rss_peak == 0
        assert "rss" not in probe.snapshot()

    def test_unreadable_statm_returns_none(self, monkeypatch):
        import builtins

        real_open = builtins.open

        def refusing_open(path, *args, **kwargs):
            if path == "/proc/self/statm":
                raise OSError("no procfs here")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", refusing_open)
        assert read_rss_bytes() is None


class TestPhaseScope:
    def test_observes_wall_cpu_and_rss(self):
        registry = MetricsRegistry()
        with phase_scope("analyze", registry):
            sum(range(10_000))
        snapshot = registry.snapshot()
        for family in ("phase.wall_seconds", "phase.cpu_seconds"):
            series = snapshot[family]["series"]
            assert len(series) == 1
            assert series[0]["labels"] == {"phase": "analyze"}
            assert series[0]["count"] == 1
            assert series[0]["sum"] >= 0.0
        if read_rss_bytes() is not None:
            rss = snapshot["phase.rss_peak_bytes"]["series"][0]
            assert rss["max"] > 1 << 20

    def test_uses_active_registry_by_default(self):
        with obs.instrumented() as (registry, _):
            with phase_scope("collect"):
                pass
            series = registry.snapshot()["phase.wall_seconds"]["series"]
            assert series[0]["labels"]["phase"] == "collect"

    def test_noop_when_instrumentation_disabled(self):
        # The null registry swallows the observations silently.
        with phase_scope("collect"):
            pass

    def test_records_even_when_body_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with phase_scope("doomed", registry):
                raise RuntimeError("boom")
        series = registry.snapshot()["phase.wall_seconds"]["series"]
        assert series[0]["count"] == 1

    def test_buckets_match_catalogue_for_merging(self):
        """phase_scope and catalogue.preregister must agree on bucket
        bounds or merge_snapshot would refuse to fold them."""
        from repro.obs import catalogue

        preregistered = MetricsRegistry()
        catalogue.preregister(preregistered)
        scoped = MetricsRegistry()
        with phase_scope("analyze", scoped):
            pass
        preregistered.merge_snapshot(scoped.snapshot())  # must not raise
        series = preregistered.snapshot()["phase.wall_seconds"]["series"]
        assert any(s["labels"].get("phase") == "analyze" for s in series)
