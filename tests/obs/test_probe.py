"""The timer-based sampling profiler."""

import time

import pytest

from repro.obs.probe import SamplingProbe
from repro.obs.trace import NULL_TRACER, Tracer


class TestDeterministicSampling:
    def test_sample_once_records_active_stack(self):
        tracer = Tracer()
        probe = SamplingProbe(tracer)
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert probe.sample_once() == 1
        assert probe.hotspots() == [(("outer", "inner"), 1)]

    def test_idle_samples_counted_separately(self):
        probe = SamplingProbe(Tracer())
        assert probe.sample_once() == 0
        snapshot = probe.snapshot()
        assert snapshot["idle_samples"] == 1
        assert snapshot["total_samples"] == 1
        assert snapshot["stacks"] == {}

    def test_hotspots_ordered_by_frequency(self):
        tracer = Tracer()
        probe = SamplingProbe(tracer)
        with tracer.span("hot"):
            for _ in range(3):
                probe.sample_once()
        with tracer.span("cold"):
            probe.sample_once()
        assert probe.hotspots() == [(("hot",), 3), (("cold",), 1)]

    def test_snapshot_keys_are_joined_stacks(self):
        tracer = Tracer()
        probe = SamplingProbe(tracer)
        with tracer.span("a"):
            with tracer.span("b"):
                probe.sample_once()
        assert probe.snapshot()["stacks"] == {"a > b": 1}


class TestTimerThread:
    def test_background_sampling_observes_work(self):
        tracer = Tracer()
        with SamplingProbe(tracer, interval=0.002) as probe:
            with tracer.span("work"):
                time.sleep(0.05)
        assert probe.total_samples > 0
        hotspots = dict(probe.hotspots())
        assert hotspots.get(("work",), 0) > 0

    def test_stop_is_idempotent_and_restartable(self):
        probe = SamplingProbe(Tracer(), interval=0.001)
        probe.start()
        with pytest.raises(RuntimeError):
            probe.start()
        probe.stop()
        probe.stop()
        probe.start()
        probe.stop()

    def test_null_tracer_yields_only_idle_samples(self):
        with SamplingProbe(NULL_TRACER, interval=0.001) as probe:
            time.sleep(0.01)
        assert probe.hotspots() == []
        assert probe.snapshot()["idle_samples"] == probe.total_samples

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            SamplingProbe(NULL_TRACER, interval=0)
