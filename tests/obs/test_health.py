"""Health/SLO rules: grammar, resolution, and derived ratios."""

import pytest

from repro.obs.health import (
    DERIVED_RATIOS,
    HealthMonitor,
    HealthRule,
    derived_ratios,
    parse_health_rule,
)
from repro.obs.metrics import MetricsRegistry


def snapshot(**totals):
    """A registry snapshot with the given counter totals."""
    registry = MetricsRegistry()
    for name, value in totals.items():
        registry.counter(name.replace("__", ".")).inc(value)
    return registry.snapshot()


class TestParse:
    @pytest.mark.parametrize("spec, name, op, bound", [
        ("scan.error_ratio<=0.05", "scan.error_ratio", "<=", 0.05),
        ("cache.hit_ratio>=0.9", "cache.hit_ratio", ">=", 0.9),
        ("breaker.tripped<1", "breaker.tripped", "<", 1.0),
        ("scan.success>10", "scan.success", ">", 10.0),
        ("snapshot.write_errors=0", "snapshot.write_errors", "<=", 0.0),
        ("scan.*=5", "scan.*", "<=", 5.0),
    ])
    def test_grammar(self, spec, name, op, bound):
        rule = parse_health_rule(spec)
        assert (rule.name, rule.op, rule.bound) == (name, op, bound)
        assert rule.spec == spec

    def test_bare_equals_is_a_ceiling(self):
        rule = parse_health_rule("retry.attempts=3")
        assert rule.check(3.0)
        assert not rule.check(3.5)

    def test_whitespace_around_name_is_stripped(self):
        assert parse_health_rule(" scan.error <= 1").name == "scan.error"

    @pytest.mark.parametrize("bad", [
        "no-operator", "<=5", "scan.error<=not-a-number", "scan.error<=",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_health_rule(bad)

    def test_pattern_detection(self):
        assert parse_health_rule("scan.*<=1").is_pattern
        assert parse_health_rule("scan.err?r<=1").is_pattern
        assert not parse_health_rule("scan.error<=1").is_pattern


class TestRuleCheck:
    @pytest.mark.parametrize("op, value, ok", [
        ("<=", 5.0, True), ("<=", 5.1, False),
        (">=", 5.0, True), (">=", 4.9, False),
        ("<", 5.0, False), ("<", 4.9, True),
        (">", 5.0, False), (">", 5.1, True),
    ])
    def test_operators(self, op, value, ok):
        assert HealthRule("m", op, 5.0, f"m{op}5").check(value) is ok


class TestDerivedRatios:
    def test_error_ratio(self):
        flat = {"scan.error": 2.0, "scan.attempts": 8.0}
        assert derived_ratios(flat)["scan.error_ratio"] == 0.25

    def test_zero_denominator_reads_healthy_zero(self):
        ratios = derived_ratios({})
        assert set(ratios) == set(DERIVED_RATIOS)
        assert all(value == 0.0 for value in ratios.values())

    def test_failure_ratio_over_finished_scans(self):
        flat = {"scan.failure": 1.0, "scan.success": 3.0}
        assert derived_ratios(flat)["scan.failure_ratio"] == 0.25

    def test_cache_hit_ratio(self):
        flat = {"cache.hits": 9.0, "cache.misses": 1.0}
        assert derived_ratios(flat)["cache.hit_ratio"] == 0.9


class TestMonitor:
    def test_passing_rules(self):
        monitor = HealthMonitor([
            parse_health_rule("scan.error_ratio<=0.5"),
            parse_health_rule("breaker.tripped=0"),
        ])
        report = monitor.evaluate(
            snapshot(scan__error=1, scan__attempts=10)
        )
        assert report.ok
        assert not report.failures
        # breaker.tripped absent from the surface evaluates at 0
        breaker = next(r for r in report.results
                       if r.metric == "breaker.tripped")
        assert breaker.value == 0.0 and breaker.ok

    def test_breach_fails_the_report(self):
        monitor = HealthMonitor([parse_health_rule("scan.error_ratio<=0.05")])
        report = monitor.evaluate(
            snapshot(scan__error=3, scan__attempts=10)
        )
        assert not report.ok
        (failure,) = report.failures
        assert failure.metric == "scan.error_ratio"
        assert failure.value == pytest.approx(0.3)
        assert failure.rule.spec == "scan.error_ratio<=0.05"

    def test_exact_rule_beats_pattern(self):
        monitor = HealthMonitor([
            parse_health_rule("scan.*<=0"),        # would fail everything
            parse_health_rule("scan.success>=1"),  # exact, passes
        ])
        report = monitor.evaluate(snapshot(scan__success=4))
        governing = {r.metric: r.rule.spec for r in report.results}
        assert governing["scan.success"] == "scan.success>=1"
        assert report.ok

    def test_pattern_governs_every_match(self):
        monitor = HealthMonitor([parse_health_rule("aia.*=0")])
        report = monitor.evaluate(
            snapshot(aia__fetch__attempts=2, aia__fetch__failure=1,
                     scan__success=5)
        )
        metrics = {r.metric for r in report.results}
        assert "aia.fetch.attempts" in metrics
        assert "aia.fetch.failure_ratio" in metrics  # derived, matches too
        assert "scan.success" not in metrics
        assert not report.ok

    def test_unmatched_pattern_is_reported_not_failed(self):
        monitor = HealthMonitor([parse_health_rule("nothing.matches.*<=0")])
        report = monitor.evaluate(snapshot(scan__success=1))
        assert report.ok
        assert report.unmatched == ("nothing.matches.*<=0",)

    def test_later_duplicate_name_wins(self):
        monitor = HealthMonitor([
            parse_health_rule("scan.success>=100"),
            parse_health_rule("scan.success>=1"),
        ])
        assert monitor.evaluate(snapshot(scan__success=5)).ok

    def test_to_dict_shape(self):
        monitor = HealthMonitor([
            parse_health_rule("scan.error_ratio<=0.0"),
            parse_health_rule("ghost.*<=1"),
        ])
        payload = monitor.evaluate(
            snapshot(scan__error=1, scan__attempts=2)
        ).to_dict()
        assert payload["ok"] is False
        assert payload["unmatched_rules"] == ["ghost.*<=1"]
        (failure,) = payload["failures"]
        assert failure == {
            "rule": "scan.error_ratio<=0.0",
            "metric": "scan.error_ratio",
            "value": 0.5,
            "ok": False,
        }
        assert failure in payload["checks"]

    def test_labeled_series_are_on_the_surface(self):
        registry = MetricsRegistry()
        registry.counter("scan.error", vantage="us").inc(2)
        monitor = HealthMonitor([
            parse_health_rule("scan.error{vantage=us}<=1")
        ])
        report = monitor.evaluate(registry.snapshot())
        assert not report.ok
        (failure,) = report.failures
        assert failure.metric == "scan.error{vantage=us}"
