"""OpenMetrics export, periodic snapshots, and the progress line."""

import io
import json
from pathlib import Path

from repro.obs.export import ProgressLine, SnapshotWriter, to_openmetrics
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden" / "registry.om"


def build_registry() -> MetricsRegistry:
    """The deterministic registry behind the golden file."""
    registry = MetricsRegistry()
    registry.counter("scan.attempts", vantage="us").inc(3)
    registry.counter("scan.attempts", vantage="au").inc(2)
    registry.counter("scan.error", vantage="us", kind="unreachable").inc()
    registry.gauge("cache.size").set(7.5)
    hist = registry.histogram("scan.wire_bytes", buckets=(10, 100),
                              vantage="us")
    for value in (5, 50, 500):
        hist.observe(value)
    registry.counter("odd.family", path='a"b\\c\nd').inc()
    return registry


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestOpenMetrics:
    def test_matches_golden_file(self):
        assert to_openmetrics(build_registry().snapshot()) == (
            GOLDEN.read_text(encoding="utf-8")
        )

    def test_empty_snapshot_is_just_eof(self):
        assert to_openmetrics({}) == "# EOF\n"

    def test_counter_gets_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("compliance.chains").inc(4)
        text = to_openmetrics(registry.snapshot())
        assert "# TYPE compliance_chains counter" in text
        assert "compliance_chains_total 4" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 2))
        for value in (0.5, 1.5, 1.7, 99):
            hist.observe(value)
        text = to_openmetrics(registry.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 3' in text
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text

    def test_bucket_order_survives_json_sort_keys_round_trip(self):
        """to_json sorts bucket keys lexically; export must re-sort.

        With bounds spanning an order of magnitude, lexical order is
        ("+Inf", "1", "10", "100", "1000", "2"): accumulating in that
        order emits +Inf first and non-monotonic cumulative counts.
        """
        registry = MetricsRegistry()
        hist = registry.histogram("wire", buckets=(1, 2, 10, 100, 1000))
        for value in (0.5, 1.5, 5, 50, 500, 5000):
            hist.observe(value)
        round_tripped = json.loads(registry.to_json())
        assert to_openmetrics(round_tripped) == (
            to_openmetrics(registry.snapshot())
        )
        lines = [line for line in to_openmetrics(round_tripped).splitlines()
                 if line.startswith("wire_bucket")]
        bounds = [line.split('le="')[1].split('"')[0] for line in lines]
        assert bounds == ["1", "2", "10", "100", "1000", "+Inf"]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts) == [1, 2, 3, 4, 5, 6]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='say "hi"\\').inc()
        text = to_openmetrics(registry.snapshot())
        assert r'c_total{path="say \"hi\"\\"} 1' in text

    def test_output_ends_with_eof_newline(self):
        text = to_openmetrics(build_registry().snapshot())
        assert text.endswith("# EOF\n")


class TestSnapshotWriter:
    def test_format_follows_extension(self, tmp_path):
        registry = build_registry()
        om = SnapshotWriter(registry, tmp_path / "metrics.om")
        om.write_now()
        assert (tmp_path / "metrics.om").read_text().endswith("# EOF\n")
        js = SnapshotWriter(registry, tmp_path / "metrics.json")
        js.write_now()
        payload = json.loads((tmp_path / "metrics.json").read_text())
        assert payload == registry.snapshot()

    def test_tick_respects_interval(self, tmp_path):
        clock = FakeClock()
        writer = SnapshotWriter(build_registry(), tmp_path / "m.om",
                                interval=5.0, clock=clock)
        assert writer.tick()          # first tick always writes
        assert not writer.tick()      # same instant: throttled
        clock.now += 4.9
        assert not writer.tick()
        clock.now += 0.2
        assert writer.tick()
        assert writer.writes == 2

    def test_no_tmp_file_left_behind(self, tmp_path):
        writer = SnapshotWriter(build_registry(), tmp_path / "m.om")
        writer.write_now()
        assert [p.name for p in tmp_path.iterdir()] == ["m.om"]


class TestSnapshotWriterFailure:
    """Telemetry export errors must never kill the scan."""

    def test_write_error_disables_instead_of_raising(self, tmp_path):
        target = tmp_path / "gone" / "m.om"  # parent never exists
        writer = SnapshotWriter(build_registry(), target)
        assert writer.write_now() is False   # swallowed, not raised
        assert writer.disabled
        assert isinstance(writer.last_error, OSError)
        assert writer.writes == 0

    def test_disabled_writer_stops_touching_the_filesystem(self, tmp_path):
        clock = FakeClock()
        target = tmp_path / "m.om"
        writer = SnapshotWriter(build_registry(), target,
                                interval=0.0, clock=clock)
        assert writer.tick()
        target_dir_mode_error = tmp_path / "gone" / "m.om"
        writer.path = target_dir_mode_error  # simulate directory vanishing
        clock.now += 1.0
        assert not writer.tick()
        assert writer.disabled
        clock.now += 1.0
        assert not writer.tick()             # stays off: no retry storm
        assert not writer.write_now()
        assert writer.writes == 1

    def test_failure_warns_once_and_counts_once(self, tmp_path):
        from repro import obs

        with obs.instrumented() as (registry, _):
            clock = FakeClock()
            writer = SnapshotWriter(build_registry(),
                                    tmp_path / "gone" / "m.om",
                                    interval=0.0, clock=clock)
            for _ in range(3):
                clock.now += 1.0
                writer.tick()
            assert registry.total("snapshot.write_errors") == 1

    def test_failure_with_null_instrumentation_is_silent(self, tmp_path):
        # no registry installed: the best-effort accounting no-ops
        writer = SnapshotWriter(build_registry(), tmp_path / "g" / "m.om")
        assert writer.write_now() is False
        assert writer.disabled


class TestProgressLine:
    def test_silent_on_non_tty(self):
        stream = io.StringIO()
        progress = ProgressLine(10, stream=stream)
        progress.update()
        progress.finish()
        assert stream.getvalue() == ""

    def test_forced_rendering_counts_ok_and_errors(self):
        stream = io.StringIO()
        clock = FakeClock()
        progress = ProgressLine(4, prefix="scan[us]", stream=stream,
                                force=True, min_interval=0.0, clock=clock)
        for ok in (True, True, False, True):
            clock.now += 1.0
            progress.update(ok=ok)
        progress.finish()
        output = stream.getvalue()
        assert "scan[us] 4/4 (100.0%)" in output
        assert "ok 3" in output and "err 1" in output
        assert output.endswith("\n")
        assert "\r" in output

    def test_throttles_repaints_but_always_paints_completion(self):
        stream = io.StringIO()
        clock = FakeClock()
        progress = ProgressLine(3, stream=stream, force=True,
                                min_interval=10.0, clock=clock)
        progress.update()  # painted (first render)
        progress.update()  # throttled
        assert stream.getvalue().count("\r") == 1
        progress.update()  # done == total: painted despite throttle
        assert stream.getvalue().count("\r") == 2

    def test_zero_total_does_not_divide(self):
        stream = io.StringIO()
        progress = ProgressLine(0, stream=stream, force=True)
        progress.finish()
        assert "(100.0%)" in stream.getvalue()
