"""The embedded telemetry server: endpoints, lifecycle, live view."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.measurement import Campaign
from repro.obs import RunJournal
from repro.obs.export import to_openmetrics
from repro.obs.health import HealthMonitor, parse_health_rule
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import (
    OPENMETRICS_CONTENT_TYPE,
    LiveRegistryView,
    RunStatus,
    TelemetryServer,
    parse_serve_address,
)
from repro.webpki import Ecosystem, EcosystemConfig


def get(url, route):
    """(status, headers, body-bytes) of one GET, errors included."""
    try:
        with urllib.request.urlopen(url + route, timeout=5) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def get_json(url, route):
    code, _, body = get(url, route)
    return code, json.loads(body)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("scan.success", vantage="us").inc(5)
    registry.counter("scan.error", vantage="us").inc(1)
    registry.counter("scan.attempts").inc(6)
    return registry


class TestLifecycle:
    def test_ephemeral_port_and_clean_stop(self, registry):
        server = TelemetryServer(registry)
        assert not server.started
        server.start()
        try:
            assert server.started
            assert server.host == "127.0.0.1"
            assert 0 < server.port <= 65535
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.stop()
        assert not server.started
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=1
            )

    def test_double_start_is_an_error(self, registry):
        with TelemetryServer(registry) as server:
            with pytest.raises(RuntimeError):
                server.start()

    def test_stop_without_start_is_a_noop(self, registry):
        TelemetryServer(registry).stop()

    def test_context_manager(self, registry):
        with TelemetryServer(registry) as server:
            code, _, _ = get(server.url, "/metrics")
            assert code == 200
        assert not server.started

    def test_request_accounting_stays_off_the_registry(self, registry):
        before = registry.snapshot()
        with TelemetryServer(registry) as server:
            for _ in range(3):
                get(server.url, "/metrics")
            assert server.requests_served == 3
        assert registry.snapshot() == before


class TestMetricsEndpoint:
    def test_byte_identical_to_openmetrics_export(self, registry):
        with TelemetryServer(registry) as server:
            code, headers, body = get(server.url, "/metrics")
        assert code == 200
        assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        assert body.decode("utf-8") == to_openmetrics(registry.snapshot())
        assert body.endswith(b"# EOF\n")

    def test_scrape_tracks_live_registry(self, registry):
        with TelemetryServer(registry) as server:
            _, _, first = get(server.url, "/metrics")
            registry.counter("scan.success", vantage="us").inc(10)
            _, _, second = get(server.url, "/metrics")
        assert b'scan_success_total{vantage="us"} 5' in first
        assert b'scan_success_total{vantage="us"} 15' in second

    def test_concurrent_scrapes_never_tear(self):
        """Writer hammers the registry; readers still parse every scrape.

        A torn render would show as a non-monotonic or malformed
        exposition; every body must be a complete document ending in
        ``# EOF`` whose counter values are internally consistent.
        """
        registry = MetricsRegistry()
        registry.counter("torn.check").inc()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                registry.counter("torn.check").inc()
                registry.histogram("torn.hist", buckets=(1, 2)).observe(1.5)

        thread = threading.Thread(target=writer, daemon=True)
        with TelemetryServer(registry) as server:
            thread.start()
            try:
                bodies = [get(server.url, "/metrics")[2]
                          for _ in range(20)]
            finally:
                stop.set()
                thread.join(timeout=5)
        values = []
        for body in bodies:
            text = body.decode("utf-8")
            assert text.endswith("# EOF\n")
            assert "# TYPE torn_check counter" in text
            for line in text.splitlines():
                if line.startswith("torn_check_total"):
                    values.append(float(line.split()[-1]))
        # each scrape saw a complete render; counts never go backwards
        assert values == sorted(values)

    def test_query_string_and_trailing_slash_are_tolerated(self, registry):
        with TelemetryServer(registry) as server:
            assert get(server.url, "/metrics/")[0] == 200
            assert get(server.url, "/metrics?format=om")[0] == 200

    def test_unknown_route_is_404(self, registry):
        with TelemetryServer(registry) as server:
            code, payload = get_json(server.url, "/nope")
        assert code == 404
        assert "no route" in payload["error"]


class TestHealthzEndpoint:
    def test_trivially_ok_without_monitor(self, registry):
        with TelemetryServer(registry) as server:
            code, payload = get_json(server.url, "/healthz")
        assert code == 200
        assert payload["ok"] is True and payload["checks"] == []

    def test_200_when_rules_pass(self, registry):
        monitor = HealthMonitor([parse_health_rule("scan.error_ratio<=0.5")])
        with TelemetryServer(registry, health=monitor) as server:
            code, payload = get_json(server.url, "/healthz")
        assert code == 200 and payload["ok"] is True

    def test_503_on_breach_and_recovery(self, registry):
        monitor = HealthMonitor([
            parse_health_rule("scan.error{vantage=us}<=1")
        ])
        with TelemetryServer(registry, health=monitor) as server:
            assert get_json(server.url, "/healthz")[0] == 200
            registry.counter("scan.error", vantage="us").inc(5)
            code, payload = get_json(server.url, "/healthz")
            assert code == 503
            assert payload["ok"] is False
            (failure,) = payload["failures"]
            assert failure["metric"] == "scan.error{vantage=us}"
            assert failure["value"] == 6.0


class TestProgressEndpoint:
    def test_404_without_status(self, registry):
        with TelemetryServer(registry) as server:
            assert get(server.url, "/progress")[0] == 404

    def test_reflects_run_status(self, registry):
        status = RunStatus()
        status.begin_phase("collect[us]", 100)
        status.advance(30)
        status.advance(2, ok=False)
        status.mark_degraded("au", "breaker open")
        with TelemetryServer(registry, status=status) as server:
            code, payload = get_json(server.url, "/progress")
        assert code == 200
        assert payload["phase"] == "collect[us]"
        assert (payload["done"], payload["total"]) == (32, 100)
        assert (payload["ok"], payload["errors"]) == (30, 2)
        assert payload["finished"] is False
        assert payload["degraded_vantages"] == {"au": "breaker open"}
        assert payload["rate_per_s"] >= 0.0


class TestReportEndpoint:
    def test_404_without_journal(self, registry):
        with TelemetryServer(registry) as server:
            assert get(server.url, "/report")[0] == 404

    def test_503_on_unreadable_journal(self, registry, tmp_path):
        path = tmp_path / "missing.jsonl"
        with TelemetryServer(registry, journal_path=path) as server:
            code, payload = get_json(server.url, "/report")
        assert code == 503 and "error" in payload

    def test_serves_partial_report_from_in_flight_journal(
        self, registry, tmp_path
    ):
        """A journal with scans but no analysis still renders."""
        path = tmp_path / "run.jsonl"
        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=20, seed=3)
        )
        campaign = Campaign(ecosystem)
        with RunJournal.create(path, campaign.manifest()) as journal:
            collection = campaign.collect(journal=journal)
            with TelemetryServer(registry, journal_path=path) as server:
                code, payload = get_json(server.url, "/report")
                assert code == 200
                assert payload["verdicts"]["total"] == 0
                assert {v["vantage"] for v in payload["vantages"]} == {
                    "us", "au"
                }
            campaign.analyze(collection.observations, journal=journal)
        with TelemetryServer(registry, journal_path=path) as server:
            code, payload = get_json(server.url, "/report")
        assert code == 200
        assert payload["verdicts"]["total"] > 0


class TestRunStatus:
    def test_snapshot_uses_injected_clock(self):
        now = [100.0]
        status = RunStatus(clock=lambda: now[0])
        status.begin_phase("analyze", 50)
        now[0] = 110.0
        status.advance(20)
        snap = status.snapshot()
        assert snap["phase_elapsed_s"] == pytest.approx(10.0)
        assert snap["rate_per_s"] == pytest.approx(2.0)

    def test_begin_phase_resets_counts(self):
        status = RunStatus()
        status.begin_phase("collect", 10)
        status.advance(10)
        status.begin_phase("analyze", 5)
        snap = status.snapshot()
        assert (snap["done"], snap["total"]) == (0, 5)

    def test_finish(self):
        status = RunStatus()
        status.finish()
        snap = status.snapshot()
        assert snap["finished"] is True and snap["phase"] == "finished"


class TestLiveRegistryView:
    def test_no_partials_returns_base_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        view = LiveRegistryView(registry)
        assert view.snapshot() == registry.snapshot()

    def test_partials_fold_without_touching_the_registry(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        worker = MetricsRegistry()
        worker.counter("a").inc(2)
        worker.counter("b").inc(1)
        view = LiveRegistryView(registry)
        view.update(0, worker.snapshot())
        folded = view.snapshot()
        assert folded["a"]["series"][0]["value"] == 5
        assert folded["b"]["series"][0]["value"] == 1
        # the real registry is untouched
        assert registry.snapshot()["a"]["series"][0]["value"] == 3
        assert "b" not in registry.snapshot()

    def test_update_replaces_rather_than_accumulates(self):
        registry = MetricsRegistry()
        view = LiveRegistryView(registry)
        worker = MetricsRegistry()
        counter = worker.counter("a")
        counter.inc(2)
        view.update(0, worker.snapshot())
        counter.inc(3)
        view.update(0, worker.snapshot())
        assert view.snapshot()["a"]["series"][0]["value"] == 5

    def test_discard_after_final_merge_prevents_double_count(self):
        registry = MetricsRegistry()
        view = LiveRegistryView(registry)
        worker = MetricsRegistry()
        worker.counter("a").inc(2)
        partial = worker.snapshot()
        view.update(7, partial)
        registry.merge_snapshot(partial)  # parent absorbs the final
        view.discard(7)
        assert view.snapshot()["a"]["series"][0]["value"] == 2
        # a late partial arriving over the pipe after retirement is
        # ignored — re-adding it would double count the span
        view.update(7, partial)
        assert len(view) == 0
        assert view.snapshot()["a"]["series"][0]["value"] == 2

    def test_clear_forgets_partials_and_retirements(self):
        registry = MetricsRegistry()
        view = LiveRegistryView(registry)
        worker = MetricsRegistry()
        worker.counter("a").inc(1)
        view.update(1, worker.snapshot())
        view.discard(2)
        view.clear()
        assert len(view) == 0
        view.update(2, worker.snapshot())  # retirement was reset
        assert len(view) == 1

    def test_server_renders_the_view(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(1)
        view = LiveRegistryView(registry)
        worker = MetricsRegistry()
        worker.counter("a").inc(9)
        view.update(0, worker.snapshot())
        with TelemetryServer(registry, live_view=view) as server:
            _, _, body = get(server.url, "/metrics")
        assert b"a_total 10" in body


class TestParseServeAddress:
    @pytest.mark.parametrize("spec, expected", [
        ("8080", ("127.0.0.1", 8080)),
        ("0", ("127.0.0.1", 0)),
        ("127.0.0.1:9100", ("127.0.0.1", 9100)),
        ("0.0.0.0:9100", ("0.0.0.0", 9100)),
        ("localhost:0", ("localhost", 0)),
    ])
    def test_accepts(self, spec, expected):
        assert parse_serve_address(spec) == expected

    @pytest.mark.parametrize("bad", [
        "", "host:", ":8080", "host:port", "70000", "127.0.0.1:-1",
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_serve_address(bad)


class TestMidRunScrapes:
    """The acceptance-criteria scrapes: live, mid-phase, valid."""

    def test_metrics_valid_during_fork_pool_analyse(self):
        """Scrapes during the pooled analyse phase parse as OpenMetrics
        and the run's results are unaffected by being watched."""
        from repro import obs
        from repro.measurement.parallel import analyze_observations
        from repro.obs.server import LiveRegistryView

        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=140, seed=7)
        )
        union = ecosystem.registry.union()
        base = ecosystem.observations()
        stream = base + [(d, list(c)) for d, c in base]

        baseline = [r for r, _ in [analyze_observations(
            stream, store=union, fetcher=ecosystem.aia_repo, workers=1,
        )]][0]

        with obs.instrumented() as (registry, _):
            view = LiveRegistryView(registry)
            status = RunStatus()
            outcome = {}

            def run():
                outcome["reports"], outcome["stats"] = analyze_observations(
                    stream, store=union, fetcher=ecosystem.aia_repo,
                    workers=4, oversubscribe=True,
                    status=status, live_view=view,
                )

            thread = threading.Thread(target=run)
            with TelemetryServer(registry, status=status,
                                 live_view=view) as server:
                thread.start()
                bodies = []
                while thread.is_alive():
                    bodies.append(get(server.url, "/metrics"))
                thread.join()
                bodies.append(get(server.url, "/metrics"))
        assert outcome["stats"].mode == "fork-pool"
        assert outcome["reports"] == baseline
        for code, headers, body in bodies:
            assert code == 200
            assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            text = body.decode("utf-8")
            assert text.endswith("# EOF\n")
            for line in text.splitlines():
                if not line.startswith("#"):
                    float(line.rsplit(" ", 1)[1])  # every sample parses

    def test_healthz_flips_to_503_under_fault_plan(self):
        """An injected outage pushes the error ratio past its SLO."""
        from repro import obs
        from repro.net import FaultPlan
        from repro.webpki.ecosystem import VANTAGE_AU

        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=120, seed=13)
        )
        network = ecosystem.install()
        network.set_fault_plan(
            FaultPlan().vantage_outage(VANTAGE_AU, 0.0)
        )
        campaign = Campaign(ecosystem, network=network)
        monitor = HealthMonitor([
            parse_health_rule("scan.error_ratio<=0.01")
        ])
        with obs.instrumented() as (registry, _):
            codes = []
            thread = threading.Thread(target=campaign.collect)
            with TelemetryServer(registry, health=monitor) as server:
                assert get(server.url, "/healthz")[0] == 200  # pre-run
                thread.start()
                while thread.is_alive():
                    codes.append(get_json(server.url, "/healthz")[0])
                thread.join()
                final_code, final = get_json(server.url, "/healthz")
        assert final_code == 503
        assert final["ok"] is False
        (failure,) = final["failures"]
        assert failure["metric"] == "scan.error_ratio"
        assert failure["value"] > 0.01
        # the flip happened while scans were still in flight, not just
        # at the end (every au connect fails, so errors land early)
        assert 503 in codes
