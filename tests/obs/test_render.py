"""The human-readable metrics table (``repro-chain stats``)."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.render import render_metrics_table


class TestRenderMetricsTable:
    def test_empty_snapshot(self):
        assert render_metrics_table({}) == "(no metrics recorded)"

    def test_empty_label_set_renders_placeholder(self):
        registry = MetricsRegistry()
        registry.counter("compliance.chains").inc(3)
        table = render_metrics_table(registry.snapshot())
        lines = table.splitlines()
        assert lines[0].startswith("metric")
        row = next(line for line in lines
                   if line.startswith("compliance.chains"))
        assert " - " in row  # no labels -> the "-" placeholder column
        assert row.rstrip().endswith("3")

    def test_unicode_label_values_align(self):
        registry = MetricsRegistry()
        registry.counter("scan.attempts", vantage="zürich").inc(2)
        registry.counter("scan.attempts", vantage="東京").inc(5)
        registry.counter("scan.attempts", vantage="us").inc(1)
        table = render_metrics_table(registry.snapshot())
        assert "vantage=zürich" in table
        assert "vantage=東京" in table
        # all three series render as separate rows
        assert table.count("scan.attempts (counter)") == 3

    def test_mixed_empty_and_unicode_labels(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c", host="naïve.example").inc(4)
        registry.histogram("h", vantage="ötzi").observe(2.5)
        table = render_metrics_table(registry.snapshot())
        assert "host=naïve.example" in table
        assert "vantage=ötzi" in table
        assert "count=1" in table and "mean=2.500" in table

    def test_histogram_cell_contents(self):
        registry = MetricsRegistry()
        hist = registry.histogram("bytes")
        for value in (100, 200, 300):
            hist.observe(value)
        table = render_metrics_table(registry.snapshot())
        assert "count=3" in table
        assert "mean=200" in table
        assert "max=300" in table
