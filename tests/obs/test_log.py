"""Structured logging: formatters, env overrides, idempotent setup."""

import io
import json
import logging

import pytest

from repro.obs import log as obslog


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    """Remove our handler and restore defaults after every test."""
    yield
    root = logging.getLogger(obslog.ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


def configure_to_buffer(**kwargs):
    buffer = io.StringIO()
    obslog.configure(stream=buffer, **kwargs)
    return buffer


class TestKeyValueFormat:
    def test_event_and_fields_on_one_line(self):
        buffer = configure_to_buffer(level="INFO", fmt="kv")
        obslog.get_logger("net.scanner").info(
            "scan.failed", domain="a.example", kind="unreachable"
        )
        line = buffer.getvalue().strip()
        assert "repro.net.scanner" in line
        assert "scan.failed" in line
        assert "domain=a.example" in line
        assert "kind=unreachable" in line

    def test_values_with_spaces_are_quoted(self):
        buffer = configure_to_buffer(level="INFO", fmt="kv")
        obslog.get_logger("x").info("event", msg="two words")
        assert 'msg="two words"' in buffer.getvalue()


class TestJsonFormat:
    def test_one_json_object_per_line(self):
        buffer = configure_to_buffer(level="INFO", fmt="json")
        obslog.get_logger("measurement").info("campaign.done", chains=42)
        payload = json.loads(buffer.getvalue())
        assert payload["event"] == "campaign.done"
        assert payload["chains"] == 42
        assert payload["logger"] == "repro.measurement"
        assert payload["level"] == "INFO"


class TestConfiguration:
    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv(obslog.ENV_LEVEL, raising=False)
        buffer = configure_to_buffer()
        logger = obslog.get_logger("quiet")
        logger.info("hidden")
        logger.warning("shown")
        assert "hidden" not in buffer.getvalue()
        assert "shown" in buffer.getvalue()

    def test_env_level_override(self, monkeypatch):
        monkeypatch.setenv(obslog.ENV_LEVEL, "DEBUG")
        buffer = configure_to_buffer()
        obslog.get_logger("x").debug("visible")
        assert "visible" in buffer.getvalue()

    def test_env_format_override(self, monkeypatch):
        monkeypatch.setenv(obslog.ENV_FORMAT, "json")
        buffer = configure_to_buffer(level="INFO")
        obslog.get_logger("x").info("event")
        json.loads(buffer.getvalue())

    def test_bad_level_and_format_rejected(self):
        with pytest.raises(ValueError):
            obslog.configure(level="NOT_A_LEVEL")
        with pytest.raises(ValueError):
            obslog.configure(fmt="xml")

    def test_reconfigure_replaces_handler(self):
        configure_to_buffer()
        configure_to_buffer()
        root = logging.getLogger(obslog.ROOT_LOGGER_NAME)
        ours = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1

    def test_get_logger_prefixes_hierarchy(self):
        assert (
            obslog.get_logger("net.scanner")._logger.name
            == "repro.net.scanner"
        )
        assert obslog.get_logger("repro.core")._logger.name == "repro.core"

    def test_unconfigured_library_logging_is_silent_and_cheap(self):
        logger = obslog.get_logger("silent.module")
        assert not logger.isEnabledFor(logging.DEBUG)
        logger.debug("dropped", big_field="x" * 10_000)
