"""Span nesting, timing tree, aggregation, Chrome-trace export."""

import json
import threading

from repro.obs.trace import NULL_TRACER, Tracer


class FakeClock:
    """Deterministic clock: each call returns the next scripted time."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner.a", "inner.b"]
        assert roots[0].children[0].children == []

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots()] == ["first", "second"]

    def test_durations_and_self_time(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):      # start=1
            with tracer.span("inner"):  # start=2, end=3
                pass
        outer = tracer.roots()[0]       # end=4
        inner = outer.children[0]
        assert inner.duration == 1.0
        assert outer.duration == 3.0
        assert outer.self_time == 2.0

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("scan.handshake", domain="a.example") as span:
            assert span.attrs == {"domain": "a.example"}

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(name):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # both spans are roots, not nested inside each other
        assert sorted(r.name for r in tracer.roots()) == ["t0", "t1"]


class TestReadouts:
    def test_aggregate_counts_and_totals(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("phase"):
            with tracer.span("step"):
                pass
            with tracer.span("step"):
                pass
        agg = tracer.aggregate()
        assert agg["step"]["count"] == 2
        assert agg["phase"]["count"] == 1
        assert agg["phase"]["total_s"] >= agg["step"]["total_s"]

    def test_tree_rendering(self):
        tracer = Tracer()
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                pass
        text = tracer.tree()
        assert "outer" in text and "  inner" in text and "n=1" in text

    def test_active_stacks_while_open(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                stacks = tracer.active_stacks()
                assert list(stacks.values()) == [("a", "b")]
        assert tracer.active_stacks() == {}

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots() == []


class TestChromeExport:
    def test_event_shape_round_trip(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", domain="a.example"):
            with tracer.span("inner"):
                pass
        events = json.loads(tracer.to_json())
        assert len(events) == 2
        for event in events:
            assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid",
                                  "args"}
            assert event["ph"] == "X"
            assert event["dur"] > 0
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["args"] == {"domain": "a.example"}
        # inner is contained within outer on the timeline
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_events_sorted_by_start(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        events = tracer.to_chrome_trace()
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        context = tracer.span("never.closed")
        context.__enter__()
        assert tracer.to_chrome_trace() == []


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", key="value") as span:
            assert span is None
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.aggregate() == {}
        assert NULL_TRACER.to_json() == "[]"
        assert NULL_TRACER.active_stacks() == {}
