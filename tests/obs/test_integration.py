"""End-to-end: a small instrumented campaign populates the registry.

This is the contract the CLI's ``--metrics-out`` relies on: after
``collect()`` + ``analyze()``, the registry mirrors the pipeline's own
bookkeeping (reachable counts, observation counts, compliance
breakdowns) without the pipeline having been written against any
particular registry instance.
"""

import json

import pytest

from repro import obs
from repro.chainbuilder import CHROME, FIREFOX, ChainBuilder
from repro.measurement import Campaign
from repro.net.scanner import ScanErrorKind
from repro.trust.cache import IntermediateCache
from repro.webpki import Ecosystem, EcosystemConfig


@pytest.fixture(scope="module")
def ecosystem():
    return Ecosystem.generate(EcosystemConfig(n_domains=80, seed=21))


@pytest.fixture(scope="module")
def instrumented_campaign(ecosystem):
    """One instrumented collect+analyze; tests read the recorded data.

    The ``obs.instrumented`` context is closed before yielding so the
    per-test autouse reset cannot interleave with a live registry.
    """
    with obs.instrumented() as (registry, tracer):
        campaign = Campaign(ecosystem)
        collection = campaign.collect()
        report, chain_reports = campaign.analyze(collection.observations)
    return registry, tracer, collection, report, chain_reports


class TestCampaignCounters:
    def test_scan_counters_match_collection(self, instrumented_campaign):
        registry, _tracer, collection, _report, _ = instrumented_campaign
        for vantage, records in collection.per_vantage.items():
            attempted = registry.value("scan.attempts", vantage=vantage)
            succeeded = registry.value("scan.success", vantage=vantage)
            assert attempted == len(records)
            assert succeeded == collection.reachable_counts[vantage]
            failures = sum(
                series.value
                for series in registry.series("scan.failure")
                if dict(series.labels).get("vantage") == vantage
            )
            assert attempted == succeeded + failures

    def test_failure_labels_use_error_kinds(self, instrumented_campaign):
        registry, *_ = instrumented_campaign
        kinds = {
            dict(series.labels)["kind"]
            for series in registry.series("scan.failure")
        }
        assert kinds <= {str(k) for k in ScanErrorKind}

    def test_throughput_and_compliance_counters(self, instrumented_campaign):
        registry, _tracer, collection, report, chain_reports = (
            instrumented_campaign
        )
        total = len(collection.observations)
        assert registry.total("campaign.chains_analyzed") == total
        assert registry.total("compliance.chains") == total
        assert registry.value(
            "compliance.verdict", verdict="noncompliant"
        ) == report.noncompliant
        assert registry.total("compliance.verdict") == report.total
        noncompliant_order = sum(
            1 for r in chain_reports if not r.order.compliant
        )
        assert registry.value(
            "compliance.order", status="noncompliant"
        ) == noncompliant_order

    def test_wire_bytes_histogram_populated(self, instrumented_campaign):
        registry, _tracer, collection, *_ = instrumented_campaign
        # one labeled series per vantage; totals aggregate across them
        series = [s for s in registry.series("scan.wire_bytes") if s.labels]
        assert {dict(s.labels)["vantage"] for s in series} == set(
            collection.per_vantage
        )
        successes = sum(collection.reachable_counts.values())
        assert sum(s.count for s in series) == successes
        assert sum(s.sum for s in series) == sum(
            record.wire_bytes
            for records in collection.per_vantage.values()
            for record in records
        )

    def test_aia_fetch_counters(self, instrumented_campaign):
        registry, *_ = instrumented_campaign
        attempts = registry.total("aia.fetch.attempts")
        assert attempts == (
            registry.total("aia.fetch.success")
            + registry.total("aia.fetch.failure")
        )


class TestCampaignSpans:
    def test_phase_span_tree(self, instrumented_campaign):
        _registry, tracer, collection, *_ = instrumented_campaign
        roots = [r.name for r in tracer.roots()]
        assert "campaign.collect" in roots
        assert "campaign.analyze" in roots
        collect = next(
            r for r in tracer.roots() if r.name == "campaign.collect"
        )
        child_names = [c.name for c in collect.children]
        assert child_names.count("campaign.scan") == len(
            collection.per_vantage
        )
        assert "campaign.union_merge" in child_names
        scan = next(c for c in collect.children if c.name == "campaign.scan")
        assert all(g.name == "scan.handshake" for g in scan.children)
        assert scan.children  # per-domain spans nest under the phase

    def test_chrome_export_is_valid(self, instrumented_campaign):
        _registry, tracer, *_ = instrumented_campaign
        events = json.loads(tracer.to_json())
        assert events
        assert all(
            event["ph"] == "X"
            and {"name", "ts", "dur", "pid", "tid"} <= set(event)
            for event in events
        )


class TestChainBuilderMetrics:
    def test_build_counters_and_pool_histogram(self, ecosystem):
        observation = ecosystem.observations()[0]
        with obs.instrumented() as (registry, _tracer):
            builder = ChainBuilder(
                CHROME, ecosystem.registry.store("chrome"),
                aia_fetcher=ecosystem.aia_repo,
            )
            builder.build(observation[1], at_time=ecosystem.config.now)
            assert registry.total("chainbuilder.builds") == 1
            assert registry.histogram(
                "chainbuilder.candidate_pool_size"
            ).count > 0
            assert registry.total("chainbuilder.paths_explored") >= 1

    def test_intermediate_cache_hit_miss_counters(self, ecosystem):
        domain, chain = ecosystem.observations()[0]
        with obs.instrumented() as (registry, _tracer):
            cache = IntermediateCache()
            cache.observe_chain(chain)
            builder = ChainBuilder(
                FIREFOX, ecosystem.registry.store("mozilla"), cache=cache,
            )
            builder.build(chain[:1], at_time=ecosystem.config.now)
            assert (
                registry.total("cache.hits") + registry.total("cache.misses")
                == cache.hits + cache.misses
            )
            assert registry.total("cache.hits") + registry.total(
                "cache.misses"
            ) > 0


class TestScanErrorKind:
    def test_string_backward_compatibility(self):
        assert ScanErrorKind.UNREACHABLE == "unreachable"
        assert ScanErrorKind.HANDSHAKE_FAILED == "handshake_failed"
        assert isinstance(ScanErrorKind.UNREACHABLE, str)
        assert {"unreachable"} == {ScanErrorKind.UNREACHABLE}

    def test_failed_records_carry_kinds(self, ecosystem):
        campaign = Campaign(ecosystem)
        collection = campaign.collect()
        failed = [
            record
            for records in collection.per_vantage.values()
            for record in records
            if not record.success
        ]
        assert failed, "expected some unreachable domains in the ecosystem"
        assert all(isinstance(r.error, ScanErrorKind) for r in failed)
        assert all(r.error == str(r.error) for r in failed)


class TestDisabledByDefault:
    def test_campaign_runs_clean_without_instrumentation(self, ecosystem):
        campaign = Campaign(ecosystem)
        report, _ = campaign.analyze()
        assert report.total > 0
        assert obs.get_metrics().snapshot() == {}
        assert obs.get_tracer().roots() == []
