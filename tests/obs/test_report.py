"""Run reports: journal aggregation, rendering, and determinism."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.measurement import Campaign
from repro.obs import RunJournal, read_journal
from repro.obs.report import (
    REPORT_VERSION,
    RunReport,
    build_report,
    render_report_html,
    render_report_markdown,
    render_report_text,
    report_from_journal,
)
from repro.webpki import Ecosystem, EcosystemConfig

GOLDEN = Path(__file__).parent / "golden" / "report.txt"


def journaled_run(path, *, n_domains=60, seed=833):
    """One full simulated campaign (collect + analyze) into a journal."""
    ecosystem = Ecosystem.generate(
        EcosystemConfig(n_domains=n_domains, seed=seed)
    )
    campaign = Campaign(ecosystem)
    with RunJournal.create(path, campaign.manifest()) as journal:
        collection = campaign.collect(journal=journal)
        campaign.analyze(collection.observations, journal=journal)
    return read_journal(path)


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    """(manifest, events, metrics snapshot) of one instrumented run."""
    path = tmp_path_factory.mktemp("report") / "run.jsonl"
    with obs.instrumented() as (registry, _):
        obs.catalogue.preregister(registry)
        manifest, events = journaled_run(path)
        snapshot = registry.snapshot()
    return manifest, events, snapshot


@pytest.fixture(scope="module")
def report(run):
    manifest, events, _ = run
    return build_report(manifest, events)


class TestBuildReport:
    def test_counts_match_journal(self, run, report):
        _, events, _ = run
        verdicts = [e for e in events if e["type"] == "verdict"]
        scans = [e for e in events if e["type"] == "scan"]
        assert report.verdict_total == len(verdicts)
        assert sum(v.attempted for v in report.vantages) == len(scans)
        assert report.verdict_compliant <= report.verdict_total
        assert 0.0 <= report.noncompliance_pct <= 100.0

    def test_collection_summary_propagated(self, run, report):
        _, events, _ = run
        summary = next(e for e in events if e["type"] == "collection")
        assert report.domains == summary["domains"]
        assert report.observations == summary["observations"]
        assert report.unique_chains == summary["unique_chains"]
        assert not report.degraded

    def test_vantage_reachability(self, report):
        assert {v.vantage for v in report.vantages} == {"us", "au"}
        for vantage in report.vantages:
            assert 0 < vantage.reached <= vantage.attempted
            assert vantage.wire_bytes > 0
            assert vantage.degraded_reason is None

    def test_rule_breakdown_has_taxonomy_ids(self, report):
        rule_ids = {r.rule_id for r in report.rules}
        assert any(r.startswith("R3.") for r in rule_ids)
        for rule in report.rules:
            assert rule.verdict in ("violation", "info")
            assert 0 < rule.domains <= rule.evidence

    def test_domain_verdicts_partition_matches_totals(self, report):
        compliant_domains = sum(
            1 for dv in report.domain_verdicts.values() if dv.compliant
        )
        # Per-domain verdicts AND the chain-level counters agree when
        # every domain serves one chain; with multi-chain domains the
        # domain view can only be stricter.
        assert compliant_domains <= report.verdict_compliant
        for dv in report.domain_verdicts.values():
            if dv.compliant:
                assert not dv.rules

    def test_noncompliant_domains_name_their_rules(self, report):
        noncompliant = [dv for dv in report.domain_verdicts.values()
                        if not dv.compliant]
        assert noncompliant
        for dv in noncompliant:
            assert dv.rules  # every violation is attributed

    def test_slowest_scans_sorted_descending(self, report):
        assert report.slowest
        seconds = [s.seconds for s in report.slowest]
        assert seconds == sorted(seconds, reverse=True)
        assert len(report.slowest) <= 10

    def test_top_slowest_is_configurable(self, run):
        manifest, events, _ = run
        tiny = build_report(manifest, events, top_slowest=3)
        assert len(tiny.slowest) == 3

    def test_identity_comes_from_manifest(self, run, report):
        manifest, _, _ = run
        assert report.identity["seed"] == manifest["seed"]
        assert (report.identity["root_store_digest"]
                == manifest["root_store_digest"])

    def test_metrics_snapshot_adds_phases_and_totals(self, run):
        manifest, events, snapshot = run
        enriched = build_report(manifest, events, metrics=snapshot)
        phases = {p.phase for p in enriched.phases}
        assert "collect" in phases
        assert "analyze" in phases
        for phase in enriched.phases:
            assert phase.count > 0
            assert phase.wall_seconds >= 0.0
        assert enriched.metric_totals
        assert enriched.metric_totals.get("scan.success", 0) > 0

    def test_rollups_need_metrics(self, run, report):
        manifest, events, snapshot = run
        assert report.rollups() == {}
        enriched = build_report(manifest, events, metrics=snapshot)
        assert "verdict_cache_hit_rate_pct" in enriched.rollups()


class TestRoundtrip:
    def test_to_dict_from_dict_lossless(self, run):
        manifest, events, snapshot = run
        original = build_report(manifest, events, metrics=snapshot)
        restored = RunReport.from_dict(
            json.loads(original.to_json())
        )
        assert restored.to_dict() == original.to_dict()
        assert restored.domain_verdicts == original.domain_verdicts
        assert restored.phases == original.phases

    def test_version_is_stamped_and_checked(self, report):
        payload = report.to_dict()
        assert payload["report_version"] == REPORT_VERSION
        payload["report_version"] = REPORT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported report"):
            RunReport.from_dict(payload)


class TestRendering:
    def test_text_sections(self, report):
        text = render_report_text(report)
        for section in ("Run identity", "Collection",
                        "Vantage reachability", "Verdicts",
                        "Rule breakdown", "Slowest scans"):
            assert section in text

    def test_text_omits_metric_sections_without_snapshot(self, report):
        text = render_report_text(report)
        assert "Phase resources" not in text
        assert "rollups" not in text

    def test_markdown_is_tabular(self, report):
        markdown = render_report_markdown(report)
        assert markdown.startswith("# Run report")
        assert "| rule | kind | domains | evidence |" in markdown

    def test_html_is_self_contained_and_escaped(self, run):
        manifest, events, _ = run
        enriched = build_report(manifest, events)
        enriched.identity["config"] = "<script>alert(1)</script>"
        html = render_report_html(enriched)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html
        assert "http://" not in html and "https://" not in html


class TestDeterminism:
    def test_console_output_byte_stable_across_identical_runs(
        self, tmp_path
    ):
        """Golden-file criterion: two identical seeded runs render the
        exact same bytes, and those bytes are the committed golden."""
        renders = []
        for name in ("first", "second"):
            manifest, events = journaled_run(tmp_path / f"{name}.jsonl")
            renders.append(render_report_text(
                build_report(manifest, events)
            ))
        assert renders[0] == renders[1]
        assert renders[0] == GOLDEN.read_text(encoding="utf-8")

    def test_report_from_journal_equals_build_report(self, tmp_path):
        path = tmp_path / "run.jsonl"
        manifest, events = journaled_run(path, n_domains=30, seed=7)
        direct = build_report(manifest, events)
        loaded = report_from_journal(path)
        assert loaded.to_dict() == direct.to_dict()
