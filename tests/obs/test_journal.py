"""The append-only run journal: manifests, crash-safe resume."""

import json

import pytest

from repro import obs
from repro.errors import JournalError
from repro.obs.journal import (
    JOURNAL_VERSION,
    RunJournal,
    manifest_identity,
    read_journal,
)

MANIFEST = {
    "run": "campaign",
    "config": {"n_domains": 100, "now": "2024-03-15T00:00:00+00:00"},
    "seed": 7,
    "root_store_digest": "ab" * 32,
}


def fresh(tmp_path, name="run.jsonl", manifest=MANIFEST):
    return RunJournal.create(tmp_path / name, manifest)


class TestManifest:
    def test_first_line_is_stamped_manifest(self, tmp_path):
        with fresh(tmp_path) as journal:
            journal.record("scan", domain="a.example", success=True)
        first = json.loads((tmp_path / "run.jsonl").read_text()
                           .splitlines()[0])
        assert first["type"] == "manifest"
        assert first["journal_version"] == JOURNAL_VERSION
        assert first["seed"] == 7

    def test_identity_ignores_non_identity_fields(self):
        other = dict(MANIFEST, run="something-else", extra=1)
        assert manifest_identity(MANIFEST) == manifest_identity(other)

    def test_identity_distinguishes_config_seed_digest(self):
        for field, value in (("config", {"n_domains": 101}),
                             ("seed", 8),
                             ("root_store_digest", "cd" * 32)):
            changed = dict(MANIFEST, **{field: value})
            assert (manifest_identity(changed)
                    != manifest_identity(MANIFEST))


class TestAppendAndRead:
    def test_events_round_trip(self, tmp_path):
        with fresh(tmp_path) as journal:
            journal.record("scan", domain="a.example", success=True)
            journal.record("collection", observations=1)
            assert journal.events_written == 3  # manifest included
        manifest, events = read_journal(tmp_path / "run.jsonl")
        assert manifest["type"] == "manifest"
        assert [e["type"] for e in events] == ["scan", "collection"]
        assert events[0]["domain"] == "a.example"

    def test_verdict_indexing(self, tmp_path):
        key = ("aa" * 32, "bb" * 32)
        with fresh(tmp_path) as journal:
            journal.record_verdict("a.example", key, {"domain": "a.example"})
            assert journal.verdict_count == 1
            assert journal.verdict_for("a.example", key) == {
                "domain": "a.example"
            }
            assert journal.verdict_for("a.example", ("cc" * 32,)) is None
            assert journal.verdict_for("b.example", key) is None

    def test_write_after_close_raises(self, tmp_path):
        journal = fresh(tmp_path)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.record("scan", domain="a.example")

    def test_events_counter_labeled_by_type(self, tmp_path):
        with obs.instrumented() as (registry, _):
            with fresh(tmp_path) as journal:
                journal.record("scan", domain="a.example")
                journal.record("scan", domain="b.example")
        assert registry.value("journal.events", type="manifest") == 1
        assert registry.value("journal.events", type="scan") == 2


class TestCrashSafety:
    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with fresh(tmp_path) as journal:
            journal.record("scan", domain="a.example", success=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"verdict","domain":"crash.ex')
        _, events = read_journal(path)
        assert [e["type"] for e in events] == ["scan"]

    def test_resume_rewrites_clean_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        key = ("aa" * 32,)
        with fresh(tmp_path) as journal:
            journal.record_verdict("a.example", key, {"domain": "a.example"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"verdict","partial":tru')
        resumed = RunJournal.open(path, MANIFEST)
        assert resumed.verdict_count == 1
        assert resumed.verdict_for("a.example", key) is not None
        resumed.record("scan", domain="b.example")
        resumed.close()
        # the partial record is gone and the file parses end to end
        _, events = read_journal(path)
        assert [e["type"] for e in events] == ["verdict", "scan"]

    def test_resumed_events_accessor(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with fresh(tmp_path) as journal:
            journal.record("scan", domain="a.example")
            journal.record("collection", observations=1)
        resumed = RunJournal.open(path, MANIFEST)
        assert len(resumed.events()) == 2
        assert [e["type"] for e in resumed.events("scan")] == ["scan"]
        resumed.close()

    def test_open_creates_when_absent_or_empty(self, tmp_path):
        created = RunJournal.open(tmp_path / "new.jsonl", MANIFEST)
        created.close()
        assert read_journal(tmp_path / "new.jsonl")[0]["seed"] == 7
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        RunJournal.open(empty, MANIFEST).close()
        assert read_journal(empty)[0]["seed"] == 7


class TestRejection:
    def test_manifest_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fresh(tmp_path).close()
        with pytest.raises(JournalError, match="manifest mismatch"):
            RunJournal.open(path, dict(MANIFEST, seed=8))

    def test_interior_damage_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with fresh(tmp_path) as journal:
            journal.record("scan", domain="a.example")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # truncate an interior line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="malformed"):
            read_journal(path)

    def test_non_object_record_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with fresh(tmp_path) as journal:
            journal.record("scan", domain="a.example")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("[1,2,3]\n")
        with pytest.raises(JournalError, match="objects"):
            read_journal(path)

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(JournalError, match="empty journal"):
            read_journal(path)

    def test_missing_manifest_refused(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"scan","domain":"a.example"}\n')
        with pytest.raises(JournalError, match="manifest"):
            read_journal(path)

    def test_unknown_version_refused(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        stamped = dict(MANIFEST, type="manifest", journal_version=99)
        path.write_text(json.dumps(stamped) + "\n")
        with pytest.raises(JournalError, match="version"):
            read_journal(path)

    def test_unreadable_path_refused(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            read_journal(tmp_path / "does-not-exist.jsonl")


class TestBatchedFlush:
    def test_records_buffer_until_the_threshold(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal.create(path, MANIFEST, flush_every=16)
        for i in range(5):
            journal.record("scan", domain=f"d{i}.example")
        # the manifest flushed at create; the five events are buffered
        assert len(path.read_text().splitlines()) == 1
        journal.flush()
        assert len(path.read_text().splitlines()) == 6
        for i in range(16):
            journal.record("scan", domain=f"x{i}.example")
        # threshold reached: the batch flushed itself
        assert len(path.read_text().splitlines()) == 22
        journal.record("scan", domain="tail.example")
        journal.close()
        assert len(path.read_text().splitlines()) == 23

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            RunJournal(tmp_path / "run.jsonl", MANIFEST, flush_every=0)

    def test_crash_loses_at_most_the_buffered_tail(self, tmp_path):
        """A hard crash drops only unflushed records; resume stays clean."""
        import os
        import subprocess
        import sys

        path = tmp_path / "run.jsonl"
        code = (
            "import os, sys\n"
            "sys.path.insert(0, os.environ['REPRO_SRC'])\n"
            "from repro.obs.journal import RunJournal\n"
            f"manifest = {MANIFEST!r}\n"
            f"journal = RunJournal.create({str(path)!r}, manifest,"
            " flush_every=100)\n"
            "for i in range(3):\n"
            "    journal.record('scan', domain=f'd{i}.example')\n"
            "journal.flush()\n"
            "journal.record('scan', domain='lost.example')\n"
            "os._exit(1)  # crash: no close, no flush\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        subprocess.run([sys.executable, "-c", code],
                       env={**os.environ, "REPRO_SRC": src}, check=False)
        resumed = RunJournal.open(path, MANIFEST)
        domains = [e["domain"] for e in resumed.events("scan")]
        assert domains == ["d0.example", "d1.example", "d2.example"]
        resumed.close()


class TestVerdictEncoding:
    def report(self):
        from repro.ca import build_hierarchy
        from repro.core import analyze_chain
        from repro.trust import RootStore, StaticAIARepository

        h = build_hierarchy("Journal", depth=1, key_seed_prefix="journal",
                            aia_base="http://aia.journal.example")
        leaf = h.issue_leaf("journal.example")
        repo = StaticAIARepository()
        for authority in h.authorities:
            repo.publish(authority.aia_uri, authority.certificate)
        store = RootStore("journal", [h.root.certificate])
        return analyze_chain("journal.example", h.chain_for(leaf), store,
                             repo)

    def test_encoder_matches_generic_json(self):
        from repro.obs.journal import encode_verdict_event

        for domain, key, report in (
            ("a.example", ("aa" * 32,), {"domain": "a.example", "n": 1}),
            ("ünïcode.example", ("bb" * 32, "cc" * 32),
             {"domain": 'quote"back\\slash', "nested": {"k": [1, None]}}),
            ("tab\there.example", (), {}),
        ):
            line = encode_verdict_event(domain, key, report)
            expected = json.dumps(
                {"type": "verdict", "domain": domain,
                 "chain_key": list(key), "report": report},
                separators=(",", ":"),
            )
            assert line == expected

    def test_report_objects_use_their_own_serializer(self, tmp_path):
        from repro.obs.journal import encode_verdict_event

        report = self.report()
        key = ("aa" * 32,)
        line = encode_verdict_event("journal.example", key, report)
        assert json.loads(line)["report"] == report.to_dict()
        assert report.to_json() in line

        with fresh(tmp_path) as journal:
            journal.record_verdict("journal.example", key, report)
            # the index parses the stored line lazily, on first lookup
            recalled = journal.verdict_for("journal.example", key)
        assert recalled == report.to_dict()
        _, events = read_journal(tmp_path / "run.jsonl")
        assert events == [json.loads(line)]

    def test_pre_encoded_lines_are_written_verbatim(self, tmp_path):
        from repro.obs.journal import encode_verdict_event

        key = ("dd" * 32,)
        line = encode_verdict_event("pre.example", key, {"domain": "pre"})
        with fresh(tmp_path) as journal:
            journal.record_verdict("pre.example", key, {"domain": "pre"},
                                   encoded=line)
        text = (tmp_path / "run.jsonl").read_text().splitlines()
        assert text[1] == line


class TestValidation:
    """``validate_journal`` / ``RunJournal.validate``: the invariants a
    well-formed append-only journal satisfies."""

    def good_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, MANIFEST) as journal:
            journal.record("scan", domain="a.example", vantage="us",
                           success=True)
            journal.record("scan", domain="a.example", vantage="au",
                           success=False)
            journal.record("degradation", vantage="au",
                           reason="breaker_open")
            journal.record("collection", domains=1, observations=1)
            journal.record_verdict("a.example", ("aa" * 32,),
                                   {"leaf": {}})
        return path

    def test_well_formed_journal_passes(self, tmp_path):
        from repro.obs.journal import validate_journal

        path = self.good_journal(tmp_path)
        manifest, events = validate_journal(path)
        assert manifest["seed"] == MANIFEST["seed"]
        assert len(events) == 5

    def append_line(self, path, payload):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")

    def test_second_collection_summary_rejected(self, tmp_path):
        from repro.obs.journal import validate_journal

        path = self.good_journal(tmp_path)
        self.append_line(path, {"type": "collection", "domains": 1})
        with pytest.raises(JournalError, match="one-summary"):
            validate_journal(path)

    def test_scan_after_summary_is_non_monotonic(self, tmp_path):
        from repro.obs.journal import validate_journal

        path = self.good_journal(tmp_path)
        self.append_line(path, {"type": "scan", "domain": "z.example",
                                "vantage": "us", "success": True})
        with pytest.raises(JournalError, match="not monotonic"):
            validate_journal(path)

    def test_duplicate_scan_rejected_with_line_number(self, tmp_path):
        from repro.obs.journal import validate_journal

        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, MANIFEST) as journal:
            journal.record("scan", domain="a.example", vantage="us")
            journal.record("scan", domain="a.example", vantage="us")
        with pytest.raises(JournalError, match="line 3.*duplicate scan"):
            validate_journal(path)

    def test_duplicate_verdict_rejected(self, tmp_path):
        from repro.obs.journal import validate_journal

        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, MANIFEST) as journal:
            journal.record("verdict", domain="a.example",
                           chain_key=["aa"], report={})
            journal.record("verdict", domain="a.example",
                           chain_key=["aa"], report={})
        with pytest.raises(JournalError, match="duplicate verdict"):
            validate_journal(path)

    def test_verdict_missing_fields_rejected(self, tmp_path):
        from repro.obs.journal import validate_journal

        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, MANIFEST) as journal:
            journal.record("verdict", chain_key=["aa"])
        with pytest.raises(JournalError, match="missing"):
            validate_journal(path)

    def test_many_problems_are_summarised(self, tmp_path):
        from repro.obs.journal import validate_journal

        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, MANIFEST) as journal:
            for _ in range(5):
                journal.record("collection", domains=1)
        with pytest.raises(JournalError, match="more problem"):
            validate_journal(path)

    def test_instance_validate_checks_resumed_events(self, tmp_path):
        path = self.good_journal(tmp_path)
        self.append_line(path, {"type": "collection", "domains": 9})
        journal = RunJournal.open(path, MANIFEST)
        with journal:
            with pytest.raises(JournalError, match="corrupt journal"):
                journal.validate()

    def test_instance_validate_passes_on_fresh_journal(self, tmp_path):
        with fresh(tmp_path) as journal:
            journal.validate()

    def test_instance_validate_requires_stamped_manifest(self, tmp_path):
        journal = RunJournal(tmp_path / "x.jsonl", dict(MANIFEST))
        with pytest.raises(JournalError, match="type/version stamp"):
            journal.validate()
