"""Cross-run diffing: flips, thresholds, exit-code gate semantics."""

import pytest

from repro.measurement import Campaign, analyze_observations
from repro.obs import RunJournal, report_from_journal
from repro.obs.diff import (
    MetricDelta,
    diff_reports,
    parse_threshold,
    render_diff_text,
)
from repro.obs.report import RunReport
from repro.trust import RootStore
from repro.webpki import Ecosystem, EcosystemConfig


@pytest.fixture(scope="module")
def ecosystem():
    return Ecosystem.generate(EcosystemConfig(n_domains=80, seed=833))


def journal_for_store(path, ecosystem, store, fetcher=None):
    """Analyze the ecosystem's observations against ``store`` and
    journal the verdicts under that store's identity."""
    campaign = Campaign(ecosystem)
    manifest = dict(campaign.manifest())
    manifest["root_store_digest"] = store.digest()
    observations = ecosystem.observations()
    reports, _ = analyze_observations(
        observations, store=store,
        fetcher=fetcher if fetcher is not None else ecosystem.aia_repo,
    )
    with RunJournal.create(path, manifest) as journal:
        for (domain, chain), report in zip(observations, reports):
            journal.record_verdict(
                domain, tuple(c.fingerprint_hex for c in chain), report
            )
    return report_from_journal(path)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory, ecosystem):
    store = ecosystem.registry.union()
    return journal_for_store(
        tmp_path_factory.mktemp("diff") / "baseline.jsonl",
        ecosystem, store,
    )


@pytest.fixture(scope="module")
def altered(tmp_path_factory, ecosystem):
    """The same corpus under an altered root store: most anchors
    dropped, and the dropped CAs' AIA repositories no longer trusted
    sources for repair — chains that completed only through them now
    come out incomplete."""
    from repro.trust import StaticAIARepository

    full = list(ecosystem.registry.union())
    reduced = RootStore("reduced", full[:1])
    return journal_for_store(
        tmp_path_factory.mktemp("diff") / "altered.jsonl",
        ecosystem, reduced, fetcher=StaticAIARepository(),
    )


class TestIdenticalRuns:
    def test_exit_zero_and_no_flips(self, baseline):
        diff = diff_reports(baseline, baseline)
        assert diff.exit_code == 0
        assert diff.identical_verdicts
        assert diff.flips == ()
        assert diff.identity_changes == {}

    def test_render_says_identical(self, baseline):
        text = render_diff_text(diff_reports(baseline, baseline))
        assert "per-domain verdicts identical" in text
        assert "exit 0" in text


class TestAlteredRootStore:
    """The acceptance criterion: an altered root store exits 1 and
    names the flipped domains and the responsible rule IDs."""

    def test_exit_one_with_attributed_flips(self, baseline, altered):
        diff = diff_reports(baseline, altered)
        assert diff.exit_code == 1
        assert diff.flips
        for flip in diff.flips:
            assert flip.domain in baseline.domain_verdicts
            assert flip.rules  # every flip names its rule IDs
        kinds = {f.kind for f in diff.flips}
        assert kinds <= {"flipped", "rules_changed"}
        assert "flipped" in kinds

    def test_identity_delta_names_the_store(self, baseline, altered):
        diff = diff_reports(baseline, altered)
        assert "root_store_digest" in diff.identity_changes
        before, after = diff.identity_changes["root_store_digest"]
        assert before != after

    def test_render_names_domains_and_rules(self, baseline, altered):
        diff = diff_reports(baseline, altered)
        text = render_diff_text(diff)
        flip = diff.flips[0]
        assert flip.domain in text
        assert flip.rules[0] in text
        assert "exit 1" in text

    def test_roundtrip_through_dict(self, baseline, altered):
        payload = diff_reports(baseline, altered).to_dict()
        assert payload["exit_code"] == 1
        assert payload["verdict_flips"]
        first = payload["verdict_flips"][0]
        assert first["rules"]
        assert first["before"] != first["after"] or first["rules"]


def report_with_metrics(totals, **identity):
    return RunReport(identity=dict(identity), metric_totals=dict(totals))


class TestThresholdGates:
    def test_breach_exits_two(self):
        before = report_with_metrics({"scan.success": 100.0})
        after = report_with_metrics({"scan.success": 90.0})
        diff = diff_reports(before, after,
                            thresholds={"scan.success": 5.0})
        assert diff.exit_code == 2
        assert diff.breaches[0].name == "scan.success"
        assert "BREACH" in render_diff_text(diff)

    def test_within_threshold_exits_zero(self):
        before = report_with_metrics({"scan.success": 100.0})
        after = report_with_metrics({"scan.success": 98.0})
        diff = diff_reports(before, after,
                            thresholds={"scan.success": 5.0})
        assert diff.exit_code == 0
        assert diff.metric_deltas  # drift still reported

    def test_fnmatch_patterns_gate_families(self):
        before = report_with_metrics({"compliance.chains": 50.0})
        after = report_with_metrics({"compliance.chains": 60.0})
        diff = diff_reports(before, after,
                            thresholds={"compliance.*": 0.0})
        assert diff.exit_code == 2

    def test_exact_name_beats_pattern(self):
        before = report_with_metrics({"scan.success": 100.0})
        after = report_with_metrics({"scan.success": 150.0})
        diff = diff_reports(
            before, after,
            thresholds={"scan.*": 0.0, "scan.success": 60.0},
        )
        assert diff.exit_code == 0

    def test_breach_dominates_flips(self, baseline, altered):
        before = RunReport(
            identity={}, metric_totals={"scan.success": 100.0},
            domain_verdicts=dict(baseline.domain_verdicts),
        )
        after = RunReport(
            identity={}, metric_totals={"scan.success": 0.0},
            domain_verdicts=dict(altered.domain_verdicts),
        )
        diff = diff_reports(before, after,
                            thresholds={"scan.success": 1.0})
        assert diff.flips and diff.breaches
        assert diff.exit_code == 2

    def test_appearance_against_zero_baseline_is_infinite_drift(self):
        delta = MetricDelta(name="x", before=0.0, after=5.0,
                            threshold_pct=1000.0)
        assert delta.relative_pct == float("inf")
        assert delta.breached


class TestParseThreshold:
    def test_parses_name_and_pct(self):
        assert parse_threshold("scan.success=2.5") == ("scan.success",
                                                      2.5)

    @pytest.mark.parametrize("spec", ["scan.success", "=5",
                                      "scan=x", "scan=-1"])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_threshold(spec)
