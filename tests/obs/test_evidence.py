"""Evidence records: builders, rendering, JSON round-trip."""

import json

import pytest

from repro.ca import malform
from repro.core import analyze_chain
from repro.obs.evidence import (
    Evidence,
    evidence_from_dict,
    render_evidence,
)


@pytest.fixture()
def analyze(store, aia_repo):
    def run(domain, chain):
        return analyze_chain(domain, chain, store, aia_repo)
    return run


class TestRecord:
    def test_round_trips_through_json(self):
        record = Evidence(
            rule_id="R2.duplicate_certificates",
            verdict="violation",
            summary="a certificate appears twice",
            certs=("ab" * 32,),
            edges=((1, 0), (2, 1)),
            details={"occurrences": {"1": [1, 2]}},
        )
        payload = json.loads(json.dumps(record.to_dict()))
        assert evidence_from_dict(payload) == record

    def test_render_cites_rule_certs_and_edges(self):
        record = Evidence(
            rule_id="R2.reversed_sequences",
            verdict="violation",
            summary="issuers precede subjects",
            certs=("ab" * 32,),
            edges=((2, 1),),
            details={"paths": ["1->2->0"]},
        )
        text = record.render()
        assert text.startswith(
            "[R2.reversed_sequences] violation: issuers precede subjects"
        )
        assert "cert abababababababab" in text
        assert "edges 2->1" in text
        assert "paths = ['1->2->0']" in text

    def test_render_evidence_empty_is_explicit(self):
        assert "compliant" in render_evidence(())


class TestCompliantChain:
    def test_only_info_records(self, analyze, chain):
        report = analyze("fixture.example", chain)
        assert report.compliant
        assert all(e.verdict == "info" for e in report.evidence)
        # completeness class is still explained
        assert any(e.rule_id.startswith("R3.") for e in report.evidence)


class TestVerdictClasses:
    """Each Table 5/7 defect class yields a citing record."""

    def test_duplicate(self, analyze, chain):
        report = analyze("fixture.example", malform.duplicate_leaf(chain))
        (record,) = [e for e in report.evidence
                     if e.rule_id == "R2.duplicate_certificates"]
        assert record.verdict == "violation"
        assert record.certs == (chain[0].fingerprint_hex,)
        assert record.details["occurrences"] == {"0": [0, 1]}

    def test_irrelevant(self, analyze, chain):
        from repro.ca import build_hierarchy

        other = build_hierarchy("EvOther", depth=1,
                                key_seed_prefix="ev-other")
        mangled = malform.insert_irrelevant(
            chain, [other.root.certificate]
        )
        report = analyze("fixture.example", mangled)
        (record,) = [e for e in report.evidence
                     if e.rule_id == "R2.irrelevant_certificates"]
        assert record.certs == (other.root.certificate.fingerprint_hex,)
        assert record.details["positions"] == [len(chain)]

    def test_reversed(self, analyze, hierarchy, leaf):
        chain = malform.reverse_intermediates(
            hierarchy.chain_for(leaf, include_root=True)
        )
        report = analyze("fixture.example", chain)
        (record,) = [e for e in report.evidence
                     if e.rule_id == "R2.reversed_sequences"]
        # every cited edge points from a later subject to an earlier
        # issuer position — the definition of a reversal
        assert record.edges
        assert all(parent < child for child, parent in record.edges)
        assert record.certs

    def test_incomplete(self, analyze, chain):
        report = analyze("fixture.example", [chain[0]])
        (record,) = [e for e in report.evidence
                     if e.rule_id == "R3.incomplete"]
        assert record.verdict == "violation"
        assert record.certs == (chain[0].fingerprint_hex,)
        assert record.details["aia_outcome"] == "completed"
        assert record.details["missing_count"] == 2

    def test_misplaced_leaf(self, analyze, chain):
        report = analyze("fixture.example", [chain[1], chain[0], chain[2]])
        records = [e for e in report.evidence
                   if e.rule_id.startswith("R1.")]
        assert records
        assert records[0].verdict == "violation"
        assert records[0].details["deciding_index"] == 1


class TestReportSerialisation:
    def test_report_round_trip_preserves_evidence(self, analyze, chain):
        from repro.core.compliance import ChainComplianceReport

        report = analyze("fixture.example",
                         malform.duplicate_leaf([chain[0]]))
        payload = json.loads(json.dumps(report.to_dict()))
        restored = ChainComplianceReport.from_dict(payload)
        assert restored == report
        assert restored.evidence == report.evidence
