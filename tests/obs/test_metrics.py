"""Counter/Gauge/Histogram math, labels, export, thread safety."""

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_same_series_is_same_object(self, registry):
        assert registry.counter("c", a=1) is registry.counter("c", a=1)
        assert registry.counter("c", a=1) is not registry.counter("c", a=2)


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestLabels:
    def test_label_order_is_irrelevant(self, registry):
        assert (
            registry.counter("c", a=1, b=2)
            is registry.counter("c", b=2, a=1)
        )

    def test_cardinality_tracked_per_series(self, registry):
        for vantage in ("us", "au"):
            for _ in range(3):
                registry.counter("scan", vantage=vantage).inc()
        registry.counter("scan", vantage="us", extra="x").inc()
        assert registry.value("scan", vantage="us") == 3
        assert registry.value("scan", vantage="au") == 3
        assert registry.total("scan") == 7
        assert len(registry.series("scan")) == 3

    def test_type_conflict_rejected(self, registry):
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("name")


class TestHistogram:
    def test_count_sum_mean_min_max(self, registry):
        hist = registry.histogram("h")
        for value in (1, 2, 3, 4, 10):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == 20
        assert hist.mean == 4
        assert hist.min == 1
        assert hist.max == 10

    def test_empty_histogram_is_all_zero(self, registry):
        hist = registry.histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0
        assert all(hist.quantile(q / 10) == 0.0 for q in range(11))

    def test_single_sample_quantiles_collapse_to_it(self, registry):
        hist = registry.histogram("h")
        hist.observe(42.5)
        assert all(hist.quantile(q / 10) == 42.5 for q in range(11))
        assert hist.mean == hist.min == hist.max == 42.5

    def test_all_identical_samples_collapse_to_the_value(self, registry):
        hist = registry.histogram("h")
        for _ in range(1_000):
            hist.observe(7.0)
        assert all(hist.quantile(q / 10) == 7.0 for q in range(11))
        assert hist.sum == 7_000.0

    def test_identical_samples_on_a_bucket_boundary(self, registry):
        # a value equal to a bucket bound must not interpolate below it
        hist = registry.histogram("h", buckets=(10.0, 100.0))
        for _ in range(5):
            hist.observe(10.0)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(1.0) == 10.0

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=(10, 100))
        hist.observe(5)
        hist.observe(50)
        hist.observe(5000)
        counts = hist.bucket_counts()
        assert counts == {"10.0": 1, "100.0": 1, "+Inf": 1}

    def test_quantiles_are_monotone_and_bounded(self, registry):
        hist = registry.histogram("h")
        for value in range(1, 1001):
            hist.observe(value)
        q = [hist.quantile(x / 10) for x in range(11)]
        assert q == sorted(q)
        assert hist.min <= q[0] and q[-1] <= hist.max
        # p50 of 1..1000 should land near 500 (bucket interpolation)
        assert 350 <= hist.quantile(0.5) <= 650

    def test_quantile_range_checked(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h").quantile(1.5)

    def test_custom_buckets_shared_across_series(self, registry):
        first = registry.histogram("h", buckets=(1, 2), kind="a")
        second = registry.histogram("h", kind="b")
        assert first.bounds == second.bounds == (1.0, 2.0)

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self, registry):
        registry.counter("scan.attempts", vantage="us").inc(3)
        registry.gauge("cache.size").set(7)
        registry.histogram("bytes").observe(123)
        restored = json.loads(registry.to_json())
        assert restored == registry.snapshot()
        assert restored["scan.attempts"]["type"] == "counter"
        assert restored["scan.attempts"]["series"][0] == {
            "labels": {"vantage": "us"}, "value": 3.0,
        }
        hist = restored["bytes"]["series"][0]
        assert hist["count"] == 1
        assert hist["quantiles"]["p50"] == pytest.approx(123, abs=200)

    def test_len_counts_series(self, registry):
        registry.counter("a", x=1)
        registry.counter("a", x=2)
        registry.gauge("b")
        assert len(registry) == 3


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self, registry):
        counter = registry.counter("c")
        hist = registry.histogram("h")

        def worker():
            for _ in range(2_000):
                counter.inc()
                hist.observe(1)
                registry.counter("labeled", thread="t").inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 16_000
        assert hist.count == 16_000
        assert registry.value("labeled", thread="t") == 16_000


class TestNullRegistry:
    def test_null_registry_accepts_everything_and_exports_nothing(self):
        NULL_REGISTRY.counter("c", a=1).inc(5)
        NULL_REGISTRY.gauge("g").set(2)
        NULL_REGISTRY.histogram("h").observe(3)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.to_json() == "{}"
        assert NULL_REGISTRY.total("c") == 0.0
        assert len(NULL_REGISTRY) == 0


class TestMergeSnapshot:
    def test_counters_and_gauges_add(self):
        worker = MetricsRegistry()
        worker.counter("jobs", kind="a").inc(3)
        worker.counter("jobs", kind="b").inc(1)
        worker.gauge("cache.size").set(10)

        parent = MetricsRegistry()
        parent.counter("jobs", kind="a").inc(2)
        parent.merge_snapshot(worker.snapshot())
        assert parent.value("jobs", kind="a") == 5
        assert parent.value("jobs", kind="b") == 1
        assert parent.value("cache.size") == 10

    def test_merge_equals_single_registry(self):
        """Sharded recording then merge == recording it all in one place."""
        # dyadic fractions: float addition is exact in any merge order
        samples = [0.25, 0.5, 1.0, 2.0, 0.125, 4.0]
        single = MetricsRegistry()
        for s in samples:
            single.counter("n").inc()
            single.histogram("t").observe(s)

        parent = MetricsRegistry()
        for shard in (samples[:2], samples[2:4], samples[4:]):
            worker = MetricsRegistry()
            for s in shard:
                worker.counter("n").inc()
                worker.histogram("t").observe(s)
            parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot() == single.snapshot()

    def test_merge_creates_absent_families(self):
        worker = MetricsRegistry()
        worker.histogram("d").observe(0.25)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot() == worker.snapshot()

    def test_type_conflict_rejected(self):
        worker = MetricsRegistry()
        worker.counter("x").inc()
        parent = MetricsRegistry()
        parent.gauge("x").set(1)
        with pytest.raises(ValueError):
            parent.merge_snapshot(worker.snapshot())

    def test_unknown_family_type_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown type"):
            parent.merge_snapshot(
                {"weird": {"type": "summary", "series": [{"labels": {}}]}}
            )

    def test_null_registry_merge_is_a_noop(self):
        worker = MetricsRegistry()
        worker.counter("c").inc()
        NULL_REGISTRY.merge_snapshot(worker.snapshot())
        assert NULL_REGISTRY.snapshot() == {}
