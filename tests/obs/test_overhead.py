"""Zero-overhead-by-default guard.

The instrumentation threaded through ``analyze_chain`` must be free
when disabled.  We measure (a) the compliance hot path with the null
instrumentation installed — the shipping default — and (b) the cost of
the exact null-hook call sequence one ``analyze_chain`` performs, and
require (b) to stay under 5% of (a).  Measuring the hook sequence
directly (rather than an A/B against a hook-free build we no longer
have) keeps the guard deterministic: it fails if someone makes the
null objects do work, grows the per-chain hook count dramatically, or
swaps a null singleton for a real registry by default.
"""

import time

from repro import obs
from repro.core import analyze_chain

ITERATIONS = 200


def _time(fn, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return time.perf_counter() - start


def _null_hooks_for_one_chain() -> None:
    """The obs calls one ``analyze_chain`` makes on the null path."""
    metrics = obs.get_metrics()
    metrics.counter("compliance.chains").inc()
    metrics.counter("compliance.leaf_placement", placement="x").inc()
    metrics.counter("compliance.order", status="x").inc()
    metrics.counter("compliance.order_defect", defect="x").inc()
    metrics.counter("compliance.completeness", category="x").inc()
    metrics.counter("compliance.verdict", verdict="x").inc()
    # campaign-level per-chain accounting
    metrics.counter("campaign.chains_analyzed").inc()
    # AIA fetches an incomplete chain might trigger
    metrics.counter("aia.fetch.attempts").inc()
    metrics.counter("aia.fetch.success").inc()


def test_disabled_instrumentation_costs_under_5_percent(chain, store,
                                                        aia_repo):
    assert not obs.enabled()

    def hot_path():
        analyze_chain("fixture.example", chain, store, aia_repo)

    hot_path()  # warm caches before timing
    _time(_null_hooks_for_one_chain, 10)

    analysis_seconds = _time(hot_path, ITERATIONS)
    hook_seconds = _time(_null_hooks_for_one_chain, ITERATIONS)
    # Generous margin: the hooks typically land well under 1%.
    assert hook_seconds < 0.05 * analysis_seconds, (
        f"null instrumentation hooks cost {hook_seconds:.6f}s for "
        f"{ITERATIONS} chains vs {analysis_seconds:.6f}s of analysis "
        f"({100 * hook_seconds / analysis_seconds:.1f}% — budget is 5%)"
    )


def test_journal_off_and_evidence_overhead_under_5_percent(chain, store,
                                                           aia_repo):
    """The no-journal branch of a campaign loop must be near-free.

    ``Campaign.analyze`` adds two per-chain decisions when journaling
    is off (skip the chain-key hash, skip the verdict lookup); evidence
    attachment adds tuple/replace work inside ``analyze_chain``.  The
    branch cost is measured directly, and the evidence builders are
    exercised standalone — together they must stay under 5% of the
    analysis they annotate.
    """
    from repro.core import ChainTopology, analyze_completeness
    from repro.obs.evidence import completeness_evidence

    assert not obs.enabled()
    journal = None

    def no_journal_branch() -> None:
        # the exact per-chain work analyze() does when journal is None
        key = () if journal is not None else ()
        recorded = None if journal is None else journal.verdict_for("d", key)
        assert recorded is None

    topology = ChainTopology(chain)
    analysis = analyze_completeness(chain, store, aia_repo,
                                    topology=topology)

    def evidence_build() -> None:
        completeness_evidence(topology, analysis, store_name=store.name)

    def hot_path():
        analyze_chain("fixture.example", chain, store, aia_repo)

    hot_path()
    evidence_build()

    analysis_seconds = _time(hot_path, ITERATIONS)
    branch_seconds = _time(no_journal_branch, ITERATIONS)
    evidence_seconds = _time(evidence_build, ITERATIONS)
    added = branch_seconds + evidence_seconds
    assert added < 0.05 * analysis_seconds, (
        f"journal-off branch + evidence build cost {added:.6f}s for "
        f"{ITERATIONS} chains vs {analysis_seconds:.6f}s of analysis "
        f"({100 * added / analysis_seconds:.1f}% — budget is 5%)"
    )


def test_null_singletons_are_shared_not_allocated():
    """The disabled path must not allocate per call."""
    metrics = obs.get_metrics()
    assert metrics.counter("a") is metrics.counter("b", label="x")
    assert metrics.histogram("h") is metrics.histogram("h2")
    tracer = obs.get_tracer()
    assert tracer.span("a") is tracer.span("b", attr=1)
