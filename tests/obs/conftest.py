"""Fixtures for the observability tests.

Instrumentation is process-global; every test here must leave the
null implementations installed for the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_instrumentation():
    obs.disable()
    yield
    obs.disable()
