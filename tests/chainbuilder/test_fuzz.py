"""The frankencert-style chain fuzzer."""

import random

import pytest

from repro.chainbuilder import (
    ChainFuzzer,
    DifferentialHarness,
    LIBRARIES,
    MUTATORS,
)
from repro.ca import build_hierarchy
from repro.trust import RootStoreRegistry, StaticAIARepository
from repro.x509 import utc

NOW = utc(2024, 6, 15)


@pytest.fixture(scope="module")
def setup():
    h = build_hierarchy(
        "FuzzT", depth=2, key_seed_prefix="fuzzt",
        aia_base="http://aia.fuzzt.example",
    )
    registry = RootStoreRegistry()
    registry.add_everywhere(h.root.certificate)
    repo = StaticAIARepository()
    for authority in h.authorities:
        repo.publish(authority.aia_uri, authority.certificate)
    seeds = []
    for index in range(5):
        leaf = h.issue_leaf(f"fuzz{index}.example",
                            not_before=utc(2024, 1, 1), days=365,
                            key_seed=f"fuzzt/{index}".encode())
        seeds.append((f"fuzz{index}.example", h.chain_for(leaf)))
    harness = DifferentialHarness(registry, aia_fetcher=repo)
    return harness, seeds


class TestMutation:
    def test_mutators_never_raise_on_seed_chains(self, setup):
        _harness, seeds = setup
        rng = random.Random(5)
        extras = [seeds[1][1][1]]
        for _, chain in seeds:
            for _name, mutator in MUTATORS:
                result = mutator(list(chain), rng, extras)
                assert isinstance(result, list)

    def test_mutation_depth_respected(self, setup):
        harness, seeds = setup
        fuzzer = ChainFuzzer(harness, seeds, rng=random.Random(1))
        _mutant, applied = fuzzer.mutate(seeds[0][1], depth=3)
        assert len(applied) == 3

    def test_empty_corpus_rejected(self, setup):
        harness, _seeds = setup
        with pytest.raises(ValueError):
            ChainFuzzer(harness, [])


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self, setup):
        harness, seeds = setup
        fuzzer = ChainFuzzer(harness, seeds, rng=random.Random(7))
        return fuzzer.run(iterations=250, at_time=NOW)

    def test_accounting_consistent(self, report):
        assert report.iterations == 250
        assert report.mutants_evaluated <= report.iterations
        assert (
            report.unanimous_ok + report.unanimous_fail
            + len(report.disagreements)
        ) == report.mutants_evaluated

    def test_finds_known_behavioural_splits(self, report):
        """The fuzzer must rediscover at least the AIA split (three
        libraries fail where CryptoAPI succeeds) and the MbedTLS
        ordering split — the paper's I-1 and I-4 in fuzz form."""
        signatures = {d.signature for d in report.disagreements}
        found_aia_split = any(
            dict(sig).get("cryptoapi") == "ok"
            and dict(sig).get("openssl") == "no_issuer_found"
            for sig in signatures
        )
        found_mbedtls_split = any(
            dict(sig).get("mbedtls") != "ok"
            and dict(sig).get("openssl") == "ok"
            for sig in signatures
        )
        assert found_aia_split
        assert found_mbedtls_split

    def test_signatures_deduplicate(self, report):
        assert report.unique_signatures <= len(report.disagreements)
        assert report.unique_signatures >= 2

    def test_mutation_counts_recorded(self, report):
        assert sum(report.mutation_counts.values()) > 0
        assert set(report.mutation_counts) <= {name for name, _ in MUTATORS}

    def test_deterministic_given_rng(self, setup):
        harness, seeds = setup
        a = ChainFuzzer(harness, seeds, rng=random.Random(42)).run(
            iterations=60, at_time=NOW
        )
        b = ChainFuzzer(harness, seeds, rng=random.Random(42)).run(
            iterations=60, at_time=NOW
        )
        assert [d.signature for d in a.disagreements] == [
            d.signature for d in b.disagreements
        ]

    def test_subset_of_clients_supported(self, setup):
        harness, seeds = setup
        fuzzer = ChainFuzzer(harness, seeds, rng=random.Random(3),
                             clients=LIBRARIES)
        report = fuzzer.run(iterations=80, at_time=NOW)
        for disagreement in report.disagreements:
            names = {name for name, _ in disagreement.signature}
            assert names == {c.name for c in LIBRARIES}
