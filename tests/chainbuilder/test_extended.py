"""Extended validation: the BetterTLS-parity checks (Table 1 union)."""

import pytest

from repro.chainbuilder import (
    ALL_CLIENTS,
    EXTENDED_CAPABILITIES,
    ExtendedEnvironment,
    run_extended_capabilities,
    validate_path_extended,
)
from repro.ca import build_hierarchy, next_serial
from repro.trust import RootStore
from repro.x509 import (
    CertificateBuilder,
    EKUOID,
    ExtendedKeyUsage,
    KeyUsage,
    Name,
    NameConstraints,
    SubjectKeyIdentifier,
    Validity,
    WeakSimulatedKeyPair,
    generate_keypair,
    utc,
)

NOW = utc(2024, 6, 15)


@pytest.fixture(scope="module")
def env():
    return ExtendedEnvironment.create(seed="ext-tests")


@pytest.fixture(scope="module")
def clean_path(env):
    leaf = env.leaf()
    return [leaf, env.issuing.certificate, env.root.certificate]


class TestNameConstraintsExtension:
    def test_permitted_subtree(self):
        constraints = NameConstraints(permitted=("example.com",))
        assert constraints.allows("example.com")
        assert constraints.allows("deep.sub.example.com")
        assert not constraints.allows("example.org")
        assert not constraints.allows("notexample.com")

    def test_excluded_overrides_permitted(self):
        constraints = NameConstraints(
            permitted=("example.com",), excluded=("internal.example.com",)
        )
        assert constraints.allows("www.example.com")
        assert not constraints.allows("www.internal.example.com")

    def test_no_constraints_allows_everything(self):
        assert NameConstraints().allows("anything.example")

    def test_roundtrips_through_pem(self, env):
        from repro.x509 import from_pem, to_pem

        key = generate_keypair("simulated", seed=b"nc-rt")
        cert = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="NC RT"))
            .issuer_name(Name.build(common_name="NC RT"))
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
            .public_key(key.public_key)
            .ca()
            .add_extension(NameConstraints(
                permitted=("a.example",), excluded=("b.example",)
            ))
            .sign(key)
        )
        restored = from_pem(to_pem(cert))
        assert restored == cert
        assert restored.extensions.name_constraints.permitted == ("a.example",)


class TestValidatePathExtended:
    def test_clean_path_passes(self, env, clean_path):
        result = validate_path_extended(
            clean_path, env.store, at_time=NOW, domain=env.domain
        )
        assert result.ok

    def test_base_failures_surface_first(self, env, clean_path):
        result = validate_path_extended(
            clean_path, env.store, at_time=utc(2030, 1, 1),
            domain=env.domain,
        )
        assert result.error == "date_invalid"

    def test_good_eku_passes(self, env, clean_path):
        # The fixture leaf carries serverAuth EKU already.
        assert clean_path[0].extensions.extended_key_usage is not None
        assert validate_path_extended(
            clean_path, env.store, at_time=NOW, domain=env.domain
        ).ok

    def test_checks_toggleable(self, env):
        weak_key = WeakSimulatedKeyPair(seed=b"ext-tests/toggle")
        leaf_key = generate_keypair("simulated", seed=b"ext-tests/toggle-leaf")
        weak_ca = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="Toggle Weak CA"))
            .issuer_name(env.root.name)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2026, 1, 1)))
            .public_key(weak_key.public_key)
            .ca()
            .key_usage(KeyUsage.for_ca())
            .akid(env.root.keypair.public_key.key_id)
            .sign(env.root.keypair)
        )
        leaf = (
            CertificateBuilder()
            .subject_name(Name.build(common_name=env.domain))
            .issuer_name(weak_ca.subject)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
            .public_key(leaf_key.public_key)
            .end_entity()
            .san_domains(env.domain)
            .sign(weak_key)
        )
        path = [leaf, weak_ca, env.root.certificate]
        strict = validate_path_extended(
            path, env.store, at_time=NOW, domain=env.domain
        )
        assert strict.error == "deprecated_crypto"
        lenient = validate_path_extended(
            path, env.store, at_time=NOW, domain=env.domain,
            reject_deprecated=False,
        )
        assert lenient.ok

    def test_anchor_exempt_from_deprecated_check(self, env):
        # A weak-signed ROOT in the store is fine: anchors are trusted
        # by membership, not signature.
        weak_root_key = WeakSimulatedKeyPair(seed=b"ext-tests/weak-root")
        weak_root = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="Weak Root"))
            .issuer_name(Name.build(common_name="Weak Root"))
            .serial_number(next_serial())
            .validity(Validity(utc(2020, 1, 1), utc(2035, 1, 1)))
            .public_key(weak_root_key.public_key)
            .ca()
            .add_extension(
                SubjectKeyIdentifier(weak_root_key.public_key.key_id)
            )
            .sign(weak_root_key)
        )
        leaf_key = generate_keypair("simulated", seed=b"ext-tests/wr-leaf")
        leaf = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="wr.example"))
            .issuer_name(weak_root.subject)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
            .public_key(leaf_key.public_key)
            .end_entity()
            .san_domains("wr.example")
            .sign(weak_root_key)
        )
        store = RootStore("weak", [weak_root])
        result = validate_path_extended(
            [leaf, weak_root], store, at_time=NOW, domain="wr.example"
        )
        # The leaf's own signature is weak-tagged, so it still fails —
        # but at index 0, not at the anchor.
        assert result.error == "deprecated_crypto"
        assert result.failing_index == 0


class TestExtendedProbes:
    def test_all_probes_pass_for_all_clients(self, env):
        """With extended validation layered on, every client model
        rejects every BetterTLS-style invalid chain."""
        for client in ALL_CLIENTS:
            results = run_extended_capabilities(client, env)
            assert set(results) == set(EXTENDED_CAPABILITIES)
            assert all(v == "yes" for v in results.values()), (
                client.name, results,
            )
