"""Engine edge cases: AIA oddities, candidate interplay, tie-breaking."""

import pytest

from repro.ca import build_hierarchy
from repro.chainbuilder import (
    ChainBuilder,
    ClientPolicy,
    KIDPriority,
    SearchScope,
)
from repro.trust import IntermediateCache, RootStore, StaticAIARepository
from repro.x509 import utc

NOW = utc(2024, 6, 15)

AIA_POLICY = ClientPolicy(
    name="edge-aia", display_name="EdgeAIA", kind="library",
    aia_fetching=True, backtracking=True,
)


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy(
        "EngEdge", depth=2, key_seed_prefix="engedge",
        aia_base="http://aia.engedge.example",
    )
    leaf = h.issue_leaf("engedge.example", not_before=utc(2024, 1, 1),
                        days=365)
    store = RootStore("engedge", [h.root.certificate])
    return h, leaf, store


class TestAIAEdges:
    def test_aia_serving_requester_itself_is_skipped(self, world):
        h, _leaf, store = world
        uri = "http://aia.engedge.example/self.crt"
        leaf = h.issuing_ca.issue_leaf(
            "selfloop.example", aia_uri=uri,
            not_before=utc(2024, 1, 1), days=365,
        )
        repo = StaticAIARepository()
        repo.publish(uri, leaf)  # the CAcert pathology
        builder = ChainBuilder(AIA_POLICY, store, aia_fetcher=repo)
        result = builder.build([leaf], at_time=NOW)
        assert not result.anchored
        assert result.error == "no_issuer_found"

    def test_aia_serving_non_issuer_is_skipped(self, world):
        h, _leaf, store = world
        other = build_hierarchy("EngEdgeO", depth=0,
                                key_seed_prefix="engedge-o")
        uri = "http://aia.engedge.example/wrong.crt"
        leaf = h.issuing_ca.issue_leaf(
            "wrongaia.example", aia_uri=uri,
            not_before=utc(2024, 1, 1), days=365,
        )
        repo = StaticAIARepository()
        repo.publish(uri, other.root.certificate)
        builder = ChainBuilder(AIA_POLICY, store, aia_fetcher=repo)
        result = builder.build([leaf], at_time=NOW)
        assert not result.anchored

    def test_aia_failures_do_not_crash_the_build(self, world):
        h, _leaf, store = world
        leaf = h.issuing_ca.issue_leaf(
            "deadaia.example",
            aia_uri="http://aia.engedge.example/404.crt",
            not_before=utc(2024, 1, 1), days=365,
        )
        builder = ChainBuilder(AIA_POLICY, store,
                               aia_fetcher=StaticAIARepository())
        result = builder.build([leaf], at_time=NOW)
        assert result.error == "no_issuer_found"
        assert result.stats.aia_fetches == 1

    def test_local_candidates_suppress_aia(self, world):
        h, leaf, store = world
        repo = StaticAIARepository()
        for authority in h.authorities:
            repo.publish(authority.aia_uri, authority.certificate)
        builder = ChainBuilder(AIA_POLICY, store, aia_fetcher=repo)
        result = builder.build(h.chain_for(leaf), at_time=NOW)
        assert result.anchored
        assert result.stats.aia_fetches == 0


class TestCandidateInterplay:
    def test_cache_candidates_deduplicate_against_presented(self, world):
        h, leaf, store = world
        cache = IntermediateCache()
        cache.observe_chain(h.chain_for(leaf, include_root=True))
        policy = AIA_POLICY.replace(use_intermediate_cache=True,
                                    aia_fetching=False)
        builder = ChainBuilder(policy, store, cache=cache)
        chain = h.chain_for(leaf)
        result = builder.build(chain, at_time=NOW)
        assert result.anchored
        # The presented intermediates win over their cache twins.
        presented_sources = [s.source for s in result.steps
                             if s.certificate in chain]
        assert all(src == "presented" for src in presented_sources)

    def test_forward_scope_still_sees_store_and_cache(self, world):
        h, leaf, store = world
        cache = IntermediateCache()
        cache.observe(h.intermediates[1].certificate)  # the issuing CA
        policy = AIA_POLICY.replace(
            search_scope=SearchScope.FORWARD,
            use_intermediate_cache=True,
            aia_fetching=False,
        )
        builder = ChainBuilder(policy, store, cache=cache)
        # Only the upper intermediate is presented (after the leaf); the
        # issuing CA must come from the cache despite forward scope.
        result = builder.build(
            [leaf, h.intermediates[0].certificate], at_time=NOW
        )
        assert result.anchored
        assert "cache" in result.structure

    def test_kid_priority_with_absent_akid_on_subject(self, world):
        """A subject with no AKID at all: every candidate ranks 'absent'
        and list order decides, even under KP2."""
        h, _leaf, store = world
        bare_leaf = h.issuing_ca.issue_leaf(
            "noakid.example", include_akid=False,
            not_before=utc(2024, 1, 1), days=365,
        )
        policy = AIA_POLICY.replace(
            kid_priority=KIDPriority.MATCH_OVER_ABSENT_OVER_MISMATCH,
            aia_fetching=False,
        )
        builder = ChainBuilder(policy, store)
        result = builder.build(h.chain_for(bare_leaf), at_time=NOW)
        assert result.anchored


class TestStructureRendering:
    def test_structure_empty_for_empty_build(self, world):
        _h, _leaf, store = world
        builder = ChainBuilder(AIA_POLICY, store)
        result = builder.build([], at_time=NOW)
        assert result.structure == ""

    def test_structure_mixes_positions_and_sources(self, world):
        h, leaf, store = world
        builder = ChainBuilder(AIA_POLICY.replace(aia_fetching=False), store)
        result = builder.build(h.chain_for(leaf), at_time=NOW)
        assert result.structure == "store->2->1->0"
