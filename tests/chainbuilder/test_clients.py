"""Client profiles: registry integrity and encoded behaviours."""

import pytest

from repro.chainbuilder import (
    ALL_CLIENTS,
    BROWSERS,
    CHROME,
    CRYPTOAPI,
    DIFFERENTIAL_BROWSERS,
    EDGE,
    FIREFOX,
    GNUTLS,
    KIDPriority,
    LIBRARIES,
    MBEDTLS,
    OPENSSL,
    SAFARI,
    SearchScope,
    ValidityPriority,
    client_by_name,
)


def test_eight_clients_four_each():
    assert len(ALL_CLIENTS) == 8
    assert len(LIBRARIES) == 4
    assert len(BROWSERS) == 4


def test_safari_excluded_from_browser_differential():
    assert SAFARI not in DIFFERENTIAL_BROWSERS
    assert len(DIFFERENTIAL_BROWSERS) == 3


def test_lookup_by_slug_and_display_name():
    assert client_by_name("mbedtls") is MBEDTLS
    assert client_by_name("Microsoft Edge") is EDGE
    with pytest.raises(KeyError):
        client_by_name("netscape")


def test_mbedtls_forward_scope_and_partial_validation():
    assert MBEDTLS.search_scope is SearchScope.FORWARD
    assert not MBEDTLS.can_reorder
    assert MBEDTLS.partial_validation
    assert MBEDTLS.allow_self_signed_leaf
    assert MBEDTLS.max_path_length == 10


def test_gnutls_bounds_the_input_list():
    assert GNUTLS.max_input_list == 16
    assert GNUTLS.max_path_length is None
    assert GNUTLS.validity_priority is ValidityPriority.NONE


def test_only_cryptoapi_and_browsers_backtrack():
    backtrackers = {c.name for c in ALL_CLIENTS if c.backtracking}
    assert backtrackers == {"cryptoapi", "chrome", "edge", "safari", "firefox"}


def test_aia_fetchers():
    fetchers = {c.name for c in ALL_CLIENTS if c.aia_fetching}
    assert fetchers == {"cryptoapi", "chrome", "edge", "safari"}


def test_firefox_uses_cache_not_aia():
    assert FIREFOX.use_intermediate_cache
    assert not FIREFOX.aia_fetching
    assert FIREFOX.max_path_length == 8


def test_root_store_assignment():
    assert OPENSSL.root_store == "mozilla"
    assert FIREFOX.root_store == "mozilla"
    assert CHROME.root_store == "chrome"
    assert CRYPTOAPI.root_store == "microsoft"
    assert EDGE.root_store == "microsoft"
    assert SAFARI.root_store == "apple"


def test_kid_priorities_match_paper():
    assert OPENSSL.kid_priority is KIDPriority.MATCH_OR_ABSENT_OVER_MISMATCH
    assert CHROME.kid_priority is KIDPriority.MATCH_OVER_ABSENT_OVER_MISMATCH
    assert MBEDTLS.kid_priority is KIDPriority.NONE


def test_replace_produces_independent_copy():
    variant = MBEDTLS.replace(search_scope=SearchScope.ALL)
    assert variant.can_reorder
    assert not MBEDTLS.can_reorder
    assert variant.name == MBEDTLS.name
