"""The chain-construction engine: scopes, priorities, limits, sources."""

import pytest

from repro.ca import build_hierarchy, malform
from repro.chainbuilder import (
    ChainBuilder,
    ClientPolicy,
    KIDPriority,
    SearchScope,
    ValidityPriority,
)
from repro.trust import IntermediateCache, RootStore, StaticAIARepository
from repro.x509 import utc

NOW = utc(2024, 6, 15)

BASELINE = ClientPolicy(name="t-base", display_name="T", kind="library")


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy(
        "Engine", depth=2, key_seed_prefix="engine",
        aia_base="http://aia.engine.example",
    )
    leaf = h.issue_leaf("engine.example", not_before=utc(2024, 1, 1), days=365)
    store = RootStore("engine", [h.root.certificate])
    repo = StaticAIARepository()
    for authority in h.authorities:
        repo.publish(authority.aia_uri, authority.certificate)
    return h, leaf, store, repo


def _builder(world, policy=BASELINE, cache=None):
    _h, _leaf, store, repo = world
    return ChainBuilder(policy, store, aia_fetcher=repo, cache=cache)


class TestHappyPath:
    def test_compliant_chain_builds(self, world):
        h, leaf, _, _ = world
        result = _builder(world).build(h.chain_for(leaf), at_time=NOW)
        assert result.anchored
        assert result.structure == "store->2->1->0"
        assert [s.source for s in result.steps] == [
            "presented", "presented", "presented", "store",
        ]

    def test_root_included_chain_terminates_in_list(self, world):
        h, leaf, _, _ = world
        chain = h.chain_for(leaf, include_root=True)
        result = _builder(world).build(chain, at_time=NOW)
        assert result.anchored
        assert result.structure == "3->2->1->0"

    def test_validation_passes(self, world):
        h, leaf, _, _ = world
        verdict = _builder(world).build_and_validate(
            h.chain_for(leaf), domain="engine.example", at_time=NOW
        )
        assert verdict.ok and verdict.error is None

    def test_empty_input(self, world):
        result = _builder(world).build([], at_time=NOW)
        assert result.error == "empty_input"


class TestSearchScope:
    def test_all_scope_reorders(self, world):
        h, leaf, _, _ = world
        disordered = malform.reverse_intermediates(h.chain_for(leaf))
        assert _builder(world).build(disordered, at_time=NOW).anchored

    def test_forward_scope_fails_disordered(self, world):
        h, leaf, _, _ = world
        policy = BASELINE.replace(search_scope=SearchScope.FORWARD)
        disordered = [h.chain_for(leaf)[0], h.chain_for(leaf)[2],
                      h.chain_for(leaf)[1]]
        result = _builder(world, policy).build(disordered, at_time=NOW)
        assert not result.anchored
        assert result.error == "no_issuer_found"

    def test_forward_scope_skips_redundant(self, world):
        h, leaf, _, _ = world
        other = build_hierarchy("EngX", depth=0, key_seed_prefix="engx")
        policy = BASELINE.replace(search_scope=SearchScope.FORWARD)
        chain = [leaf, other.root.certificate, *h.chain_for(leaf)[1:]]
        assert _builder(world, policy).build(chain, at_time=NOW).anchored


class TestLimits:
    def test_input_list_limit(self, world):
        h, leaf, _, _ = world
        policy = BASELINE.replace(max_input_list=3)
        chain = malform.duplicate_leaf(h.chain_for(leaf))  # 4 certs
        result = _builder(world, policy).build(chain, at_time=NOW)
        assert result.error == "input_list_too_long"
        assert result.path == []

    def test_input_list_limit_counts_duplicates(self, world):
        h, leaf, _, _ = world
        policy = BASELINE.replace(max_input_list=4)
        chain = h.chain_for(leaf, include_root=True)  # exactly 4: fine
        assert _builder(world, policy).build(chain, at_time=NOW).anchored

    def test_path_length_limit(self, world):
        h, leaf, _, _ = world
        policy = BASELINE.replace(max_path_length=3)
        # Needs leaf + 2 intermediates + root = 4 > 3.
        result = _builder(world, policy).build(h.chain_for(leaf), at_time=NOW)
        assert not result.anchored
        assert result.error == "length_limit_exceeded"

    def test_path_length_limit_exact_fit(self, world):
        h, leaf, _, _ = world
        policy = BASELINE.replace(max_path_length=4)
        assert _builder(world, policy).build(h.chain_for(leaf), at_time=NOW).anchored

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ClientPolicy(name="x", display_name="x", kind="library",
                         max_path_length=1)
        with pytest.raises(ValueError):
            ClientPolicy(name="x", display_name="x", kind="compiler")


class TestSelfSignedLeaf:
    def test_rejected_by_default(self, world):
        h, _, _, _ = world
        result = _builder(world).build([h.root.certificate], at_time=NOW)
        assert result.error == "self_signed_leaf_rejected"

    def test_allowed_but_untrusted(self, world):
        other = build_hierarchy("EngSelf", depth=0, key_seed_prefix="engself")
        policy = BASELINE.replace(allow_self_signed_leaf=True)
        result = _builder(world, policy).build(
            [other.root.certificate], at_time=NOW
        )
        assert result.error == "untrusted_root"
        assert len(result.path) == 1

    def test_allowed_and_trusted(self, world):
        h, _, _, _ = world
        policy = BASELINE.replace(allow_self_signed_leaf=True)
        result = _builder(world, policy).build([h.root.certificate], at_time=NOW)
        assert result.anchored


class TestBacktracking:
    @pytest.fixture(scope="class")
    def fork(self):
        """A leaf whose issuer has two candidate parents: the untrusted
        self-signed original and a trusted cross-sign."""
        trusted = build_hierarchy("EngTrust", depth=0, key_seed_prefix="engt")
        rogue = build_hierarchy("EngRogue", depth=0, key_seed_prefix="engr")
        cross = trusted.root.cross_sign(rogue.root, not_before=utc(2021, 1, 1))
        issuing = rogue.root.issue_intermediate(
            __import__("repro.x509", fromlist=["Name"]).Name.build(
                common_name="EngRogue Issuing"
            ),
            not_before=utc(2021, 1, 1), days=3650,
        )
        leaf = issuing.issue_leaf("fork.example", not_before=utc(2024, 1, 1),
                                  days=365)
        store = RootStore("fork", [trusted.root.certificate])
        chain = [leaf, rogue.root.certificate, issuing.certificate, cross]
        return chain, store

    def test_no_backtracking_commits_to_untrusted(self, fork):
        chain, store = fork
        builder = ChainBuilder(BASELINE, store)
        result = builder.build(chain, at_time=NOW)
        assert not result.anchored
        assert result.error == "untrusted_root"

    def test_backtracking_recovers(self, fork):
        chain, store = fork
        policy = BASELINE.replace(backtracking=True)
        result = ChainBuilder(policy, store).build(chain, at_time=NOW)
        assert result.anchored
        assert result.stats.backtracks >= 1


class TestAIAAndCache:
    def test_aia_completion_when_enabled(self, world):
        h, leaf, _, _ = world
        policy = BASELINE.replace(aia_fetching=True)
        result = _builder(world, policy).build([leaf], at_time=NOW)
        assert result.anchored
        assert result.stats.aia_fetches >= 1
        assert "aia" in result.structure

    def test_aia_ignored_when_disabled(self, world):
        _h, leaf, _, _ = world
        result = _builder(world).build([leaf], at_time=NOW)
        assert not result.anchored
        assert result.stats.aia_fetches == 0

    def test_cache_completion(self, world):
        h, leaf, _, _ = world
        cache = IntermediateCache()
        cache.observe_chain(h.chain_for(leaf, include_root=True))
        policy = BASELINE.replace(use_intermediate_cache=True)
        result = _builder(world, policy, cache=cache).build([leaf], at_time=NOW)
        assert result.anchored
        assert any(s.source == "cache" for s in result.steps)

    def test_cold_cache_fails(self, world):
        _h, leaf, _, _ = world
        policy = BASELINE.replace(use_intermediate_cache=True)
        result = _builder(world, policy, cache=IntermediateCache()).build(
            [leaf], at_time=NOW
        )
        assert not result.anchored


class TestPriorities:
    def test_partial_validation_skips_expired(self, world):
        h, leaf, store, repo = world
        expired = h.root.issue_intermediate(
            h.intermediates[0].name,
            not_before=utc(2020, 1, 1), days=100,
        )
        # Wrong expired variant listed first; partial validation skips it.
        chain = [leaf, expired.certificate, *h.chain_for(leaf)[1:]]
        policy = BASELINE.replace(partial_validation=True)
        result = ChainBuilder(policy, store, aia_fetcher=repo).build(
            chain, at_time=NOW
        )
        assert result.anchored
        assert expired.certificate not in result.path

    def test_vp1_prefers_first_valid(self, world):
        h, leaf, store, _ = world
        expired = h.intermediates[0]  # placeholder; real variant below
        policy = BASELINE.replace(validity_priority=ValidityPriority.FIRST_VALID)
        # handled thoroughly in capability tests; here just ensure no crash
        result = ChainBuilder(policy, store).build(h.chain_for(leaf), at_time=NOW)
        assert result.anchored

    def test_stats_counters_populate(self, world):
        h, leaf, _, _ = world
        result = _builder(world).build(h.chain_for(leaf), at_time=NOW)
        assert result.stats.candidates_considered >= 3
