"""Permutation robustness of the priority classifiers.

The paper infers each client's priority rule "by altering their
arrangement and observing the certificate chain constructed".  For the
inference to be sound, the classification must not depend on the one
arrangement our harness happens to use — these tests check invariance
across every permutation of the candidate block.
"""

from itertools import permutations

import pytest

from repro.chainbuilder import (
    CHROME,
    CapabilityEnvironment,
    GNUTLS,
    MBEDTLS,
    OPENSSL,
)
from repro.chainbuilder.capabilities import NOW
from repro.x509 import Validity, utc


@pytest.fixture(scope="module")
def env():
    return CapabilityEnvironment.create(seed="perm")


def _selected(policy, env, candidates, tail):
    builder = env.builder(policy)
    result = builder.build([env.leaf, *candidates, *tail], at_time=NOW)
    assert len(result.steps) >= 2
    return result.steps[1].certificate.fingerprint


class TestValidityPermutations:
    @pytest.fixture(scope="class")
    def candidates(self, env):
        return {
            "expired": env.variant_issuer(
                validity=Validity(utc(2022, 1, 1), utc(2023, 1, 1))),
            "plain": env.variant_issuer(
                validity=Validity(utc(2024, 1, 1), utc(2025, 1, 1))),
            "recent": env.variant_issuer(
                validity=Validity(utc(2024, 4, 1), utc(2025, 4, 1))),
        }

    def test_vp2_always_picks_most_recent(self, env, candidates):
        tail = [env.i2.certificate, env.root.certificate]
        for arrangement in permutations(candidates.values()):
            chosen = _selected(CHROME, env, list(arrangement), tail)
            assert chosen == candidates["recent"].fingerprint

    def test_vp1_always_picks_first_valid(self, env, candidates):
        tail = [env.i2.certificate, env.root.certificate]
        for arrangement in permutations(candidates.values()):
            chosen = _selected(OPENSSL, env, list(arrangement), tail)
            first_valid = next(
                c for c in arrangement
                if c.fingerprint != candidates["expired"].fingerprint
            )
            assert chosen == first_valid.fingerprint

    def test_no_priority_always_picks_first(self, env, candidates):
        tail = [env.i2.certificate, env.root.certificate]
        for arrangement in permutations(candidates.values()):
            chosen = _selected(GNUTLS, env, list(arrangement), tail)
            assert chosen == arrangement[0].fingerprint


class TestKIDPermutations:
    @pytest.fixture(scope="class")
    def candidates(self, env):
        return {
            "match": env.variant_issuer(skid="match"),
            "mismatch": env.variant_issuer(skid=b"\x01" * 20),
            "absent": env.variant_issuer(skid=None),
        }

    def test_kp2_always_picks_match(self, env, candidates):
        tail = [env.i2.certificate, env.root.certificate]
        for arrangement in permutations(candidates.values()):
            chosen = _selected(CHROME, env, list(arrangement), tail)
            assert chosen == candidates["match"].fingerprint

    def test_kp1_never_picks_mismatch(self, env, candidates):
        tail = [env.i2.certificate, env.root.certificate]
        for arrangement in permutations(candidates.values()):
            chosen = _selected(OPENSSL, env, list(arrangement), tail)
            assert chosen != candidates["mismatch"].fingerprint
            # ...and among the equally ranked pair, list order decides.
            first_ok = next(
                c for c in arrangement
                if c.fingerprint != candidates["mismatch"].fingerprint
            )
            assert chosen == first_ok.fingerprint


class TestForwardScopePermutations:
    def test_mbedtls_takes_first_candidate_after_leaf(self, env):
        candidates = [
            env.variant_issuer(skid="match"),
            env.variant_issuer(skid=b"\x02" * 20),
        ]
        tail = [env.i2.certificate, env.root.certificate]
        for arrangement in permutations(candidates):
            chosen = _selected(MBEDTLS, env, list(arrangement), tail)
            assert chosen == arrangement[0].fingerprint


class TestClassifierStability:
    def test_matrix_stable_across_environment_seeds(self):
        from repro.chainbuilder import ALL_CLIENTS, run_capabilities

        env_a = CapabilityEnvironment.create(seed="perm-a")
        env_b = CapabilityEnvironment.create(seed="perm-b")
        for client in ALL_CLIENTS:
            a = run_capabilities(client, env_a)
            b = run_capabilities(client, env_b)
            # The path-length probe builds its own ladder; everything
            # else must be environment-independent.
            a.pop("path_length_constraint")
            b.pop("path_length_constraint")
            assert a == b, client.name
