"""Path validation: every error code, in precedence order."""

import pytest

from repro.ca import build_hierarchy, next_serial
from repro.chainbuilder import validate_path
from repro.trust import RootStore
from repro.x509 import (
    CertificateBuilder,
    KeyUsage,
    Name,
    SimulatedKeyPair,
    SubjectKeyIdentifier,
    Validity,
    utc,
)

NOW = utc(2024, 6, 15)


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("Verify", depth=1, key_seed_prefix="verify")
    leaf = h.issue_leaf("verify.example", not_before=utc(2024, 1, 1), days=365)
    store = RootStore("verify", [h.root.certificate])
    path = [leaf, h.intermediates[0].certificate, h.root.certificate]
    return h, leaf, store, path


class TestSuccess:
    def test_full_path_validates(self, world):
        _h, _leaf, store, path = world
        result = validate_path(path, store, at_time=NOW, domain="verify.example")
        assert result.ok and result.error is None
        assert bool(result)

    def test_domain_check_optional(self, world):
        _h, _leaf, store, path = world
        assert validate_path(path, store, at_time=NOW).ok


class TestErrors:
    def test_empty_path(self, world):
        _h, _leaf, store, _ = world
        result = validate_path([], store, at_time=NOW)
        assert result.error == "empty_path"

    def test_unknown_issuer_for_truncated_path(self, world):
        _h, _leaf, store, path = world
        result = validate_path(path[:1], store, at_time=NOW)
        assert result.error == "unknown_issuer"

    def test_untrusted_terminal(self, world):
        h, leaf, _store, path = world
        empty = RootStore("empty")
        result = validate_path(path, empty, at_time=NOW)
        assert result.error == "unknown_issuer"
        assert result.failing_index == 2

    def test_trust_check_skippable(self, world):
        _h, _leaf, _store, path = world
        empty = RootStore("empty")
        assert validate_path(path, empty, at_time=NOW, check_trust=False).ok

    def test_bad_signature_linkage(self, world):
        h, leaf, store, path = world
        other = build_hierarchy("VerifyO", depth=1, key_seed_prefix="verifyo")
        broken = [leaf, other.intermediates[0].certificate,
                  other.root.certificate]
        result = validate_path(broken, store, at_time=NOW)
        assert result.error == "bad_signature"
        assert result.failing_index == 0

    def test_date_invalid(self, world):
        _h, _leaf, store, path = world
        result = validate_path(path, store, at_time=utc(2030, 1, 1))
        assert result.error == "date_invalid"
        assert result.failing_index == 0

    def test_domain_mismatch(self, world):
        _h, _leaf, store, path = world
        result = validate_path(path, store, at_time=NOW, domain="other.example")
        assert result.error == "domain_mismatch"

    def test_not_a_ca_intermediate(self, world):
        h, _leaf, store, _ = world
        # A leaf certificate signing another leaf: the signer is not a CA.
        middle_key = SimulatedKeyPair(seed=b"verify/notca")
        middle = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="Not A CA"))
            .issuer_name(h.root.name)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2026, 1, 1)))
            .public_key(middle_key.public_key)
            .end_entity()
            .akid(h.root.keypair.public_key.key_id)
            .sign(h.root.keypair)
        )
        bottom_key = SimulatedKeyPair(seed=b"verify/bottom")
        bottom = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="victim.example"))
            .issuer_name(middle.subject)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2026, 1, 1)))
            .public_key(bottom_key.public_key)
            .end_entity()
            .san_domains("victim.example")
            .sign(middle_key)
        )
        result = validate_path(
            [bottom, middle, h.root.certificate], store, at_time=NOW
        )
        assert result.error == "not_a_ca"
        assert result.failing_index == 1

    def test_bad_key_usage(self, world):
        h, _leaf, store, _ = world
        bad_key = SimulatedKeyPair(seed=b"verify/badku")
        bad_ca = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="Bad KU CA"))
            .issuer_name(h.root.name)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2026, 1, 1)))
            .public_key(bad_key.public_key)
            .ca()
            .key_usage(KeyUsage(frozenset({"digital_signature"})))
            .sign(h.root.keypair)
        )
        leaf_key = SimulatedKeyPair(seed=b"verify/badku-leaf")
        victim = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="ku.example"))
            .issuer_name(bad_ca.subject)
            .serial_number(next_serial())
            .validity(Validity(utc(2024, 1, 1), utc(2026, 1, 1)))
            .public_key(leaf_key.public_key)
            .end_entity()
            .san_domains("ku.example")
            .sign(bad_key)
        )
        result = validate_path(
            [victim, bad_ca, h.root.certificate], store, at_time=NOW
        )
        assert result.error == "bad_key_usage"

    def test_path_length_exceeded(self):
        h = build_hierarchy(
            "VerifyPL", depth=2, key_seed_prefix="verifypl",
            path_lengths=(0, None),
        )
        leaf = h.issue_leaf("pl.example", not_before=utc(2024, 1, 1), days=365)
        store = RootStore("pl", [h.root.certificate])
        path = [leaf, *[ca.certificate for ca in reversed(h.intermediates)],
                h.root.certificate]
        result = validate_path(path, store, at_time=NOW)
        assert result.error == "path_length_exceeded"

    def test_self_issued_intermediates_not_counted(self):
        # pathLen counts non-self-issued intermediates only; a hierarchy
        # whose constraint exactly fits must pass.
        h = build_hierarchy(
            "VerifyPL2", depth=2, key_seed_prefix="verifypl2",
            path_lengths=(None, 0),
        )
        leaf = h.issue_leaf("pl2.example", not_before=utc(2024, 1, 1), days=365)
        store = RootStore("pl2", [h.root.certificate])
        path = [leaf, *[ca.certificate for ca in reversed(h.intermediates)],
                h.root.certificate]
        # Constraint pathLen=0 sits on the leaf-adjacent intermediate:
        # no intermediates below it, so the path is valid.
        assert validate_path(path, store, at_time=NOW).ok
