"""The Table 2 capability harness and the golden Table 9 matrix."""

import pytest

from repro.chainbuilder import (
    ALL_CLIENTS,
    CHROME,
    CRYPTOAPI,
    FIREFOX,
    GNUTLS,
    MBEDTLS,
    OPENSSL,
    SAFARI,
    classify_basic_constraints_priority,
    classify_key_usage_priority,
    classify_kid_priority,
    classify_validity_priority,
    probe_path_length_limit,
    run_capabilities,
    run_capability_matrix,
    test_aia_completion as cap_aia,
    test_order_reorganization as cap_order,
    test_redundancy_elimination as cap_redundancy,
    test_self_signed_leaf as cap_self_signed,
)
from repro.trust import IntermediateCache

#: The paper's Table 9, cell for cell.
EXPECTED_TABLE9 = {
    "openssl": {
        "order_reorganization": "yes", "redundancy_elimination": "yes",
        "aia_completion": "no", "validity_priority": "VP1",
        "kid_matching_priority": "KP1", "key_usage_priority": "-",
        "basic_constraints_priority": "-", "path_length_constraint": ">52",
        "self_signed_leaf": "no",
    },
    "gnutls": {
        "order_reorganization": "yes", "redundancy_elimination": "yes",
        "aia_completion": "no", "validity_priority": "-",
        "kid_matching_priority": "KP1", "key_usage_priority": "-",
        "basic_constraints_priority": "-", "path_length_constraint": "16",
        "self_signed_leaf": "no",
    },
    "mbedtls": {
        "order_reorganization": "no", "redundancy_elimination": "yes",
        "aia_completion": "no", "validity_priority": "VP1",
        "kid_matching_priority": "-", "key_usage_priority": "KUP",
        "basic_constraints_priority": "BP", "path_length_constraint": "10",
        "self_signed_leaf": "yes",
    },
    "cryptoapi": {
        "order_reorganization": "yes", "redundancy_elimination": "yes",
        "aia_completion": "yes", "validity_priority": "VP2",
        "kid_matching_priority": "KP2", "key_usage_priority": "KUP",
        "basic_constraints_priority": "BP", "path_length_constraint": "13",
        "self_signed_leaf": "no",
    },
    "chrome": {
        "order_reorganization": "yes", "redundancy_elimination": "yes",
        "aia_completion": "yes", "validity_priority": "VP2",
        "kid_matching_priority": "KP2", "key_usage_priority": "KUP",
        "basic_constraints_priority": "BP", "path_length_constraint": ">52",
        "self_signed_leaf": "no",
    },
    "edge": {
        "order_reorganization": "yes", "redundancy_elimination": "yes",
        "aia_completion": "yes", "validity_priority": "VP2",
        "kid_matching_priority": "KP2", "key_usage_priority": "KUP",
        "basic_constraints_priority": "BP", "path_length_constraint": "21",
        "self_signed_leaf": "no",
    },
    "safari": {
        "order_reorganization": "yes", "redundancy_elimination": "yes",
        "aia_completion": "yes", "validity_priority": "VP2",
        "kid_matching_priority": "KP1", "key_usage_priority": "KUP",
        "basic_constraints_priority": "BP", "path_length_constraint": ">52",
        "self_signed_leaf": "yes",
    },
    "firefox": {
        "order_reorganization": "yes", "redundancy_elimination": "yes",
        "aia_completion": "no", "validity_priority": "VP1",
        "kid_matching_priority": "-", "key_usage_priority": "KUP",
        "basic_constraints_priority": "BP", "path_length_constraint": "8",
        "self_signed_leaf": "no",
    },
}


@pytest.fixture(scope="module")
def matrix():
    return run_capability_matrix(ALL_CLIENTS)


class TestTable9Golden:
    @pytest.mark.parametrize("client", [c.name for c in ALL_CLIENTS])
    def test_full_row_matches_paper(self, matrix, client):
        assert matrix[client] == EXPECTED_TABLE9[client]

    def test_matrix_covers_all_clients(self, matrix):
        assert set(matrix) == set(EXPECTED_TABLE9)


class TestIndividualCapabilities:
    def test_mbedtls_alone_fails_reordering(self, cap_env):
        failures = [
            c.name for c in ALL_CLIENTS if not cap_order(c, cap_env)
        ]
        assert failures == ["mbedtls"]

    def test_everyone_eliminates_redundancy(self, cap_env):
        assert all(cap_redundancy(c, cap_env) for c in ALL_CLIENTS)

    def test_aia_support_split(self, cap_env):
        supported = {c.name for c in ALL_CLIENTS if cap_aia(c, cap_env)}
        assert supported == {"cryptoapi", "chrome", "edge", "safari"}

    def test_firefox_aia_compensated_by_cache(self, cap_env):
        """Table 9 shows Firefox AIA as unsupported, but the paper notes
        it compensates with the intermediate cache — a warmed cache
        makes the same test pass."""
        assert not cap_aia(FIREFOX, cap_env)
        cache = IntermediateCache()
        cache.observe(cap_env.i2.certificate)
        assert cap_aia(FIREFOX, cap_env, cache=cache)

    def test_self_signed_leaf_only_mbedtls_and_safari(self, cap_env):
        accepting = {
            c.name for c in ALL_CLIENTS if cap_self_signed(c, cap_env)
        }
        assert accepting == {"mbedtls", "safari"}


class TestPriorityClassifiers:
    def test_validity_classes(self, cap_env):
        assert classify_validity_priority(OPENSSL, cap_env) == "VP1"
        assert classify_validity_priority(CHROME, cap_env) == "VP2"
        assert classify_validity_priority(GNUTLS, cap_env) == "none"
        assert classify_validity_priority(MBEDTLS, cap_env) == "VP1"

    def test_kid_classes(self, cap_env):
        assert classify_kid_priority(OPENSSL, cap_env) == "KP1"
        assert classify_kid_priority(CRYPTOAPI, cap_env) == "KP2"
        assert classify_kid_priority(SAFARI, cap_env) == "KP1"
        assert classify_kid_priority(FIREFOX, cap_env) == "none"

    def test_key_usage_classes(self, cap_env):
        assert classify_key_usage_priority(OPENSSL, cap_env) == "none"
        assert classify_key_usage_priority(MBEDTLS, cap_env) == "KUP"

    def test_basic_constraints_classes(self, cap_env):
        assert classify_basic_constraints_priority(GNUTLS, cap_env) == "none"
        assert classify_basic_constraints_priority(CHROME, cap_env) == "BP"


class TestPathLengthProbe:
    def test_bounded_clients_report_exact_limit(self):
        assert probe_path_length_limit(MBEDTLS, probe_limit=14) == "10"

    def test_gnutls_limit_is_input_list(self):
        assert probe_path_length_limit(GNUTLS, probe_limit=20) == "16"

    def test_unbounded_clients_exceed_probe(self):
        assert probe_path_length_limit(OPENSSL, probe_limit=12) == ">12"

    def test_firefox_short_limit(self):
        assert probe_path_length_limit(FIREFOX, probe_limit=12) == "8"
