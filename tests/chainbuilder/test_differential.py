"""Differential harness: outcomes, attribution rules, cache modes."""

import pytest

from repro.ca import build_hierarchy, malform
from repro.chainbuilder import (
    ALL_CLIENTS,
    DIFFERENTIAL_BROWSERS,
    DifferentialHarness,
    LIBRARIES,
    attribute_library_discrepancy,
)
from repro.chainbuilder.differential import (
    ISSUE_AIA,
    ISSUE_BACKTRACKING,
    ISSUE_LONG_CHAIN,
    ISSUE_ORDER,
    ISSUE_OTHER,
    ChainOutcome,
)
from repro.trust import RootStoreRegistry, StaticAIARepository
from repro.x509 import utc

NOW = utc(2024, 6, 15)


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy(
        "Diff", depth=2, key_seed_prefix="diff",
        aia_base="http://aia.diff.example",
    )
    registry = RootStoreRegistry()
    registry.add_everywhere(h.root.certificate)
    repo = StaticAIARepository()
    for authority in h.authorities:
        repo.publish(authority.aia_uri, authority.certificate)
    leaf = h.issue_leaf("diff.example", not_before=utc(2024, 1, 1), days=365)
    return h, leaf, registry, repo


class TestHarness:
    def test_compliant_chain_unanimous(self, world):
        h, leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        outcome = harness.evaluate("diff.example", h.chain_for(leaf), at_time=NOW)
        assert outcome.all_pass(ALL_CLIENTS)
        assert not outcome.discrepant(ALL_CLIENTS)

    def test_reversed_chain_fails_only_mbedtls(self, world):
        h, leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        chain = malform.reverse_intermediates(h.chain_for(leaf))
        outcome = harness.evaluate("diff.example", chain, at_time=NOW)
        results = outcome.subset_results(LIBRARIES)
        assert results["openssl"] == "ok"
        assert results["mbedtls"] != "ok"
        assert outcome.discrepant(LIBRARIES)
        assert attribute_library_discrepancy(outcome) == {ISSUE_ORDER}

    def test_incomplete_chain_attributed_to_aia(self, world):
        h, leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        outcome = harness.evaluate("diff.example", [leaf], at_time=NOW)
        results = outcome.subset_results(LIBRARIES)
        assert results["cryptoapi"] == "ok"
        assert results["openssl"] == "no_issuer_found"
        assert ISSUE_AIA in attribute_library_discrepancy(outcome)

    def test_long_list_attributed_to_gnutls_limit(self, world):
        h, leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        chain = malform.duplicate_certificate(
            h.chain_for(leaf, include_root=True), 1, copies=14
        )
        outcome = harness.evaluate("diff.example", chain, at_time=NOW)
        assert outcome.subset_results(LIBRARIES)["gnutls"] == "input_list_too_long"
        assert ISSUE_LONG_CHAIN in attribute_library_discrepancy(outcome)

    def test_report_aggregates(self, world):
        h, leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        observations = [
            ("diff.example", h.chain_for(leaf)),
            ("diff.example", malform.reverse_intermediates(h.chain_for(leaf))),
            ("diff.example", [leaf]),
        ]
        report = harness.run(observations, at_time=NOW)
        assert report.total == 3
        # Firefox's cold cache cannot complete the bare-leaf chain, so
        # only the first two pass every differential browser.
        assert report.pass_all(DIFFERENTIAL_BROWSERS) == 2
        assert report.pass_all(LIBRARIES) == 1
        assert len(report.discrepancies(LIBRARIES)) == 2
        assert 0 < report.failure_rate(LIBRARIES) <= 100

    def test_firefox_cache_learning(self, world):
        h, leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        observations = [
            ("diff.example", h.chain_for(leaf, include_root=True)),
            ("diff.example", [leaf]),
        ]
        report = harness.run(observations, at_time=NOW,
                             observe_into_cache=True)
        # Firefox learned the intermediates from the first chain, so it
        # completes the bare-leaf chain from cache.
        assert report.outcomes[1].result_of("firefox") == "ok"

    def test_firefox_cold_cache_fails(self, world):
        h, leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        outcome = harness.evaluate("cold.example", [leaf], at_time=NOW)
        assert outcome.result_of("firefox") != "ok"


class TestWorkerSpans:
    """Fork-pool workers trace for real; the parent adopts their spans.

    Regression: the differential pool used to pin workers to
    ``NULL_TRACER``, so a traced ``differential --workers N`` run
    silently lost every worker-side evaluation span — the same bug
    the analyse pool in ``repro.measurement.parallel`` already fixed.
    """

    def spread_observations(self, world, count=4):
        h, _leaf, _registry, _repo = world
        return [
            (f"span{i}.example",
             h.chain_for(h.issue_leaf(
                 f"span{i}.example",
                 not_before=utc(2024, 1, 1), days=365,
             )))
            for i in range(count)
        ]

    def test_worker_spans_surface_in_parent_trace(self, world):
        from repro import obs

        _h, _leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        observations = self.spread_observations(world)
        with obs.instrumented() as (_, tracer):
            report = harness.run(observations, at_time=NOW,
                                 workers=2, oversubscribe=True)
            events = tracer.to_chrome_trace()
        assert report.total == len(observations)
        worker_events = [
            e for e in events if e["name"] == "differential.span"
        ]
        assert worker_events  # the regression: these used to vanish
        # each submitted span rides its own Chrome-trace tid lane, so
        # worker timelines render side by side instead of stacked
        lanes = {e["tid"] for e in worker_events}
        assert len(lanes) == len(worker_events)
        assert 0 not in lanes  # lane 0 stays the parent's

    def test_untraced_run_adopts_nothing(self, world):
        from repro import obs

        _h, _leaf, registry, repo = world
        harness = DifferentialHarness(registry, aia_fetcher=repo)
        observations = self.spread_observations(world)
        with obs.instrumented(tracer=obs.NullTracer()) as (_, tracer):
            harness.run(observations, at_time=NOW,
                        workers=2, oversubscribe=True)
        assert tracer.roots() == []


class TestAttributionRules:
    def _outcome(self, results):
        from repro.chainbuilder import BuildResult, ClientVerdict
        from repro.chainbuilder.verify import ValidationResult

        verdicts = {}
        for name, label in results.items():
            if label == "ok":
                verdicts[name] = ClientVerdict(
                    BuildResult(True), ValidationResult(True)
                )
            else:
                verdicts[name] = ClientVerdict(
                    BuildResult(False, error=label),
                    ValidationResult(False, label),
                )
        return ChainOutcome("x.example", 3, verdicts)

    def test_backtracking_rule(self):
        outcome = self._outcome({
            "openssl": "untrusted_root", "gnutls": "untrusted_root",
            "mbedtls": "ok", "cryptoapi": "ok",
        })
        assert ISSUE_BACKTRACKING in attribute_library_discrepancy(outcome)

    def test_order_rule_requires_other_library_passing(self):
        outcome = self._outcome({
            "openssl": "no_issuer_found", "gnutls": "no_issuer_found",
            "mbedtls": "no_issuer_found", "cryptoapi": "ok",
        })
        tags = attribute_library_discrepancy(outcome)
        assert ISSUE_ORDER not in tags
        assert ISSUE_AIA in tags

    def test_unclassified_falls_back_to_other(self):
        outcome = self._outcome({
            "openssl": "date_invalid", "gnutls": "ok",
            "mbedtls": "ok", "cryptoapi": "ok",
        })
        assert attribute_library_discrepancy(outcome) == {ISSUE_OTHER}
