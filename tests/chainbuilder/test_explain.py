"""Construction explanations."""

import pytest

from repro.ca import malform
from repro.chainbuilder import (
    ChainBuilder,
    CHROME,
    MBEDTLS,
    OPENSSL,
    explain_build,
)
from repro.x509 import utc

NOW = utc(2024, 6, 15)


@pytest.fixture(scope="module")
def builder(store, aia_repo):
    return ChainBuilder(CHROME, store, aia_fetcher=aia_repo)


class TestHappyPath:
    def test_every_extension_hop_explained(self, builder, hierarchy, leaf):
        chain = hierarchy.chain_for(leaf, include_root=True)
        explanation = explain_build(builder, chain, at_time=NOW)
        assert explanation.result.anchored
        # Extensions happen for leaf and the two intermediates; the
        # root is a terminal with no slate.
        assert len(explanation.hops) == 3
        for hop in explanation.hops:
            assert hop.chosen is not None
            assert hop.chosen.chosen

    def test_render_mentions_path_and_client(self, builder, hierarchy, leaf):
        explanation = explain_build(
            builder, hierarchy.chain_for(leaf), at_time=NOW
        )
        text = explanation.render()
        assert "Chrome" in text
        assert "extending" in text
        assert "->" in text

    def test_chosen_candidates_match_result_path(self, builder, hierarchy,
                                                 leaf):
        chain = hierarchy.chain_for(leaf, include_root=True)
        explanation = explain_build(builder, chain, at_time=NOW)
        for index, hop in enumerate(explanation.hops):
            chosen = hop.chosen
            next_cert = explanation.result.steps[index + 1].certificate
            assert chosen.subject == (
                next_cert.subject.rfc4514_string() or "<empty>"
            )


class TestFailures:
    def test_dead_end_hop_has_empty_slate(self, store, leaf):
        bare_builder = ChainBuilder(OPENSSL, store)  # no AIA fetcher
        explanation = explain_build(bare_builder, [leaf], at_time=NOW)
        assert not explanation.result.anchored
        assert explanation.hops[-1].candidates == ()
        assert "dead-ends" in explanation.hops[-1].render()

    def test_forward_scope_shows_missing_candidates(self, store, hierarchy,
                                                    leaf):
        mbed = ChainBuilder(MBEDTLS, store)
        disordered = [hierarchy.chain_for(leaf)[0],
                      hierarchy.chain_for(leaf)[2],
                      hierarchy.chain_for(leaf)[1]]
        explanation = explain_build(mbed, disordered, at_time=NOW)
        assert not explanation.result.anchored
        # The second hop's slate is empty: the needed issuer sits
        # *before* the current position.
        assert explanation.hops[-1].candidates == ()

    def test_expired_candidates_flagged(self, store, hierarchy, leaf,
                                        aia_repo):
        # An expired variant of the upper intermediate, same key and
        # subject, so it really is a candidate issuer.
        from repro.ca import next_serial
        from repro.x509 import CertificateBuilder, Validity

        upper = hierarchy.intermediates[0]
        expired = (
            CertificateBuilder()
            .subject_name(upper.name)
            .issuer_name(hierarchy.root.name)
            .serial_number(next_serial())
            .validity(Validity(utc(2020, 1, 1), utc(2021, 1, 1)))
            .public_key(upper.keypair.public_key)
            .ca()
            .akid(hierarchy.root.keypair.public_key.key_id)
            .sign(hierarchy.root.keypair)
        )
        chain = [leaf, expired, *hierarchy.chain_for(leaf)[1:]]
        explanation = explain_build(
            ChainBuilder(CHROME, store, aia_fetcher=aia_repo),
            chain, at_time=NOW,
        )
        rendered = explanation.render()
        assert "expired" in rendered

    def test_sources_reported(self, store, hierarchy, leaf, aia_repo):
        builder = ChainBuilder(CHROME, store, aia_fetcher=aia_repo)
        explanation = explain_build(builder, [leaf], at_time=NOW)
        sources = {
            c.source for hop in explanation.hops for c in hop.candidates
        }
        assert "aia" in sources
