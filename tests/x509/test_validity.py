"""Validity windows: containment, comparisons, and UTC hygiene."""

from datetime import datetime, timedelta

import pytest

from repro.x509 import Validity, ensure_utc, utc


class TestConstruction:
    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            Validity(utc(2024, 2, 1), utc(2024, 1, 1))

    def test_naive_datetime_rejected(self):
        with pytest.raises(ValueError):
            Validity(datetime(2024, 1, 1), utc(2025, 1, 1))

    def test_ensure_utc_rejects_naive(self):
        with pytest.raises(ValueError):
            ensure_utc(datetime(2024, 1, 1))

    def test_from_duration(self):
        window = Validity.from_duration(utc(2024, 1, 1), days=90)
        assert window.not_after == utc(2024, 1, 1) + timedelta(days=90)

    def test_duration_property(self):
        window = Validity(utc(2024, 1, 1), utc(2024, 1, 11))
        assert window.duration == timedelta(days=10)

    def test_zero_length_window_is_legal(self):
        moment = utc(2024, 1, 1)
        window = Validity(moment, moment)
        assert window.contains(moment)


class TestContainment:
    window = Validity(utc(2024, 1, 1), utc(2024, 12, 31))

    def test_contains_midpoint(self):
        assert self.window.contains(utc(2024, 6, 1))

    def test_boundaries_inclusive(self):
        assert self.window.contains(utc(2024, 1, 1))
        assert self.window.contains(utc(2024, 12, 31))

    def test_expired(self):
        assert self.window.is_expired(utc(2025, 1, 1))
        assert not self.window.is_expired(utc(2024, 12, 31))

    def test_not_yet_valid(self):
        assert self.window.is_not_yet_valid(utc(2023, 12, 31))
        assert not self.window.is_not_yet_valid(utc(2024, 1, 1))


class TestComparisons:
    def test_overlaps_true_for_sharing_windows(self):
        a = Validity(utc(2024, 1, 1), utc(2024, 6, 1))
        b = Validity(utc(2024, 5, 1), utc(2024, 12, 1))
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_overlaps_false_for_disjoint(self):
        a = Validity(utc(2024, 1, 1), utc(2024, 2, 1))
        b = Validity(utc(2024, 3, 1), utc(2024, 4, 1))
        assert not a.overlaps(b)

    def test_touching_windows_overlap(self):
        a = Validity(utc(2024, 1, 1), utc(2024, 2, 1))
        b = Validity(utc(2024, 2, 1), utc(2024, 3, 1))
        assert a.overlaps(b)

    def test_more_recent_than_compares_not_before(self):
        older = Validity(utc(2023, 1, 1), utc(2025, 1, 1))
        newer = Validity(utc(2024, 1, 1), utc(2024, 6, 1))
        assert newer.more_recent_than(older)
        assert not older.more_recent_than(newer)

    def test_longer_than_compares_duration(self):
        short = Validity(utc(2024, 1, 1), utc(2024, 2, 1))
        long = Validity(utc(2024, 1, 1), utc(2025, 1, 1))
        assert long.longer_than(short)
        assert not short.longer_than(long)

    def test_non_utc_timezone_normalised(self):
        from datetime import timezone

        offset = timezone(timedelta(hours=5))
        local = datetime(2024, 1, 1, 5, 0, tzinfo=offset)
        window = Validity(local, utc(2024, 6, 1))
        assert window.not_before == utc(2024, 1, 1)
