"""Key pairs and the signature verification predicate, both backends."""

import pytest

from repro.errors import SignatureError
from repro.x509 import (
    ECDSAKeyPair,
    PublicKey,
    SimulatedKeyPair,
    generate_keypair,
)


class TestSimulatedBackend:
    def test_sign_verify_roundtrip(self):
        key = SimulatedKeyPair()
        signature = key.sign(b"payload")
        assert key.public_key.verify(b"payload", signature)

    def test_wrong_data_fails(self):
        key = SimulatedKeyPair()
        signature = key.sign(b"payload")
        assert not key.public_key.verify(b"other", signature)

    def test_wrong_key_fails(self):
        a, b = SimulatedKeyPair(), SimulatedKeyPair()
        signature = a.sign(b"payload")
        assert not b.public_key.verify(b"payload", signature)

    def test_seeded_keys_are_deterministic(self):
        a = SimulatedKeyPair(seed=b"same")
        b = SimulatedKeyPair(seed=b"same")
        assert a.public_key == b.public_key
        assert a.sign(b"x") == b.sign(b"x")

    def test_different_seeds_differ(self):
        assert (
            SimulatedKeyPair(seed=b"one").public_key
            != SimulatedKeyPair(seed=b"two").public_key
        )

    def test_unseeded_keys_are_random(self):
        assert SimulatedKeyPair().public_key != SimulatedKeyPair().public_key

    def test_key_id_is_20_bytes(self):
        assert len(SimulatedKeyPair().public_key.key_id) == 20

    def test_empty_signature_never_verifies(self):
        key = SimulatedKeyPair()
        assert not key.public_key.verify(b"payload", b"")


class TestECDSABackend:
    def test_sign_verify_roundtrip(self):
        key = ECDSAKeyPair()
        signature = key.sign(b"payload")
        assert key.public_key.verify(b"payload", signature)

    def test_tampered_payload_fails(self):
        key = ECDSAKeyPair()
        signature = key.sign(b"payload")
        assert not key.public_key.verify(b"payload!", signature)

    def test_wrong_key_fails(self):
        a, b = ECDSAKeyPair(), ECDSAKeyPair()
        assert not b.public_key.verify(b"data", a.sign(b"data"))

    def test_signature_algorithm_oid(self):
        assert ECDSAKeyPair().signature_algorithm.name == "ecdsa-with-SHA256"


class TestFactoryAndDispatch:
    def test_factory_defaults_to_simulated(self):
        assert isinstance(generate_keypair(), SimulatedKeyPair)

    def test_factory_ecdsa(self):
        assert isinstance(generate_keypair("ecdsa"), ECDSAKeyPair)

    def test_factory_rejects_seeded_ecdsa(self):
        with pytest.raises(ValueError):
            generate_keypair("ecdsa", seed=b"x")

    def test_factory_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            generate_keypair("rot13")

    def test_unknown_scheme_raises(self):
        bogus = PublicKey("martian", b"\x00" * 32)
        with pytest.raises(SignatureError):
            bogus.verify(b"data", b"sig")

    def test_cross_scheme_verification_fails(self):
        sim = SimulatedKeyPair()
        # An ECDSA-tagged key with simulated bytes cannot verify a
        # simulated signature (and must not crash).
        assert not sim.public_key.verify(b"data", ECDSAKeyPair().sign(b"data"))

    def test_fingerprint_is_stable_prefix(self):
        key = SimulatedKeyPair(seed=b"fp")
        assert key.public_key.fingerprint == key.public_key.key_id.hex()[:16]
