"""Distinguished-name model and RFC 5280 §7.1 comparison semantics."""

import pytest

from repro.x509 import (
    EMPTY_NAME,
    Name,
    NameAttribute,
    NameOID,
    RelativeDistinguishedName,
)


class TestNameBuild:
    def test_build_sets_common_name(self):
        name = Name.build(common_name="example.com")
        assert name.common_name == "example.com"

    def test_build_orders_rdns_canonically(self):
        name = Name.build(common_name="x", country="US", organization="Acme")
        rendered = name.rfc4514_string()
        assert rendered == "C=US,O=Acme,CN=x"

    def test_build_rejects_unknown_keyword(self):
        with pytest.raises(TypeError):
            Name.build(flavour="strawberry")

    def test_build_empty_is_empty_name(self):
        assert Name.build().is_empty()

    def test_all_supported_attributes_render(self):
        name = Name.build(
            common_name="cn", country="US", locality="Springfield",
            state="IL", organization="O", organizational_unit="OU",
            serial_number="42", email="a@b.c",
        )
        assert len(name) == 8


class TestNameComparison:
    def test_equal_names_compare_equal(self):
        a = Name.build(common_name="Example CA", organization="Org")
        b = Name.build(common_name="Example CA", organization="Org")
        assert a == b
        assert hash(a) == hash(b)

    def test_comparison_is_case_insensitive(self):
        a = Name.build(common_name="Example CA")
        b = Name.build(common_name="EXAMPLE ca")
        assert a == b

    def test_comparison_folds_internal_whitespace(self):
        a = Name.build(common_name="Example   Root  CA")
        b = Name.build(common_name="Example Root CA")
        assert a == b

    def test_comparison_strips_outer_whitespace(self):
        assert Name.build(common_name="  X ") == Name.build(common_name="X")

    def test_different_values_differ(self):
        assert Name.build(common_name="A") != Name.build(common_name="B")

    def test_rdn_order_matters(self):
        a = Name.build(common_name="x", organization="o")
        b = Name.build(organization="o", common_name="x")
        # build() canonicalises order, so construct manually:
        cn = RelativeDistinguishedName(
            (NameAttribute(NameOID.COMMON_NAME, "x"),)
        )
        org = RelativeDistinguishedName(
            (NameAttribute(NameOID.ORGANIZATION_NAME, "o"),)
        )
        assert Name([cn, org]) != Name([org, cn])
        assert a == b  # sanity: build canonicalises

    def test_name_not_equal_to_other_types(self):
        assert Name.build(common_name="x") != "CN=x"

    def test_multivalued_rdn_is_order_insensitive(self):
        attrs = (
            NameAttribute(NameOID.COMMON_NAME, "x"),
            NameAttribute(NameOID.ORGANIZATION_NAME, "o"),
        )
        a = Name([RelativeDistinguishedName(attrs)])
        b = Name([RelativeDistinguishedName(tuple(reversed(attrs)))])
        assert a == b


class TestNameAccessors:
    def test_get_attributes_returns_all_values(self):
        rdn1 = RelativeDistinguishedName(
            (NameAttribute(NameOID.ORGANIZATIONAL_UNIT, "A"),)
        )
        rdn2 = RelativeDistinguishedName(
            (NameAttribute(NameOID.ORGANIZATIONAL_UNIT, "B"),)
        )
        name = Name([rdn1, rdn2])
        assert name.get_attributes(NameOID.ORGANIZATIONAL_UNIT) == ["A", "B"]

    def test_common_name_none_when_absent(self):
        assert Name.build(organization="o").common_name is None

    def test_empty_name_constant(self):
        assert EMPTY_NAME.is_empty()
        assert not EMPTY_NAME
        assert len(EMPTY_NAME) == 0

    def test_rfc4514_escapes_commas(self):
        name = Name.build(organization="Acme, Inc.")
        assert "Acme\\, Inc." in name.rfc4514_string()

    def test_rdn_requires_attribute(self):
        with pytest.raises(ValueError):
            RelativeDistinguishedName(())

    def test_iteration_yields_rdns(self):
        name = Name.build(common_name="x", organization="o")
        assert len(list(name)) == 2
