"""OID registry behaviour."""

from repro.x509 import ExtensionOID, NameOID, ObjectIdentifier
from repro.x509.oid import lookup, registered_oids


def test_lookup_returns_registered_instance():
    assert lookup("2.5.4.3") is NameOID.COMMON_NAME


def test_lookup_unknown_returns_unnamed():
    oid = lookup("1.2.3.999")
    assert oid.dotted == "1.2.3.999"
    assert oid.name == "unknown"


def test_oids_hashable_and_comparable():
    assert ObjectIdentifier("2.5.4.3", "commonName") == NameOID.COMMON_NAME
    assert len({NameOID.COMMON_NAME, lookup("2.5.4.3")}) == 1


def test_arcs_parse_dotted():
    assert ExtensionOID.BASIC_CONSTRAINTS.arcs == (2, 5, 29, 19)


def test_registry_contains_core_oids():
    registry = registered_oids()
    for dotted in ("2.5.29.17", "2.5.29.19", "1.3.6.1.5.5.7.1.1",
                   "1.3.6.1.5.5.7.48.2", "1.3.6.1.5.5.7.3.1"):
        assert dotted in registry


def test_registry_copy_is_defensive():
    registry = registered_oids()
    registry.clear()
    assert registered_oids()
