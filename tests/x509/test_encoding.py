"""PEM-like serialisation: loss-less round trips and corrupt input."""

import pytest

from repro.errors import EncodingError
from repro.x509 import (
    CertificateBuilder,
    KeyUsage,
    Name,
    OpaqueExtension,
    SimulatedKeyPair,
    Validity,
    from_pem,
    load_pem_bundle,
    to_pem,
    to_pem_bundle,
    utc,
)
from repro.x509.encoding import certificate_from_dict, certificate_to_dict
from repro.x509.oid import lookup


def test_roundtrip_preserves_fingerprint(chain):
    for cert in chain:
        assert from_pem(to_pem(cert)) == cert


def test_roundtrip_preserves_extensions(chain):
    leaf = chain[0]
    restored = from_pem(to_pem(leaf))
    assert restored.subject_key_id == leaf.subject_key_id
    assert restored.authority_key_id == leaf.authority_key_id
    assert restored.aia_ca_issuer_uris == leaf.aia_ca_issuer_uris
    assert restored.matches_domain("fixture.example")


def test_bundle_roundtrip_preserves_order(chain):
    shuffled = [chain[-1], chain[0], chain[1]]
    assert load_pem_bundle(to_pem_bundle(shuffled)) == shuffled


def test_bundle_parses_with_surrounding_noise(chain):
    text = "# comment\n" + to_pem(chain[0]) + "\ntrailing garbage\n"
    assert load_pem_bundle(text) == [chain[0]]


def test_empty_text_yields_no_certs():
    assert load_pem_bundle("no pem here") == []


def test_from_pem_rejects_multiple_blocks(chain):
    with pytest.raises(EncodingError):
        from_pem(to_pem_bundle(list(chain[:2])))


def test_from_pem_rejects_zero_blocks():
    with pytest.raises(EncodingError):
        from_pem("nothing")


def test_unterminated_block_rejected(chain):
    text = to_pem(chain[0]).replace("-----END CERTIFICATE-----", "")
    with pytest.raises(EncodingError):
        load_pem_bundle(text)


def test_corrupt_base64_rejected(chain):
    text = to_pem(chain[0])
    corrupted = text.replace(text.splitlines()[2], "!!!not base64!!!")
    with pytest.raises(EncodingError):
        load_pem_bundle(corrupted)


def test_dict_roundtrip_all_extension_kinds():
    key = SimulatedKeyPair(seed=b"enc-all")
    cert = (
        CertificateBuilder()
        .subject_name(Name.build(common_name="all.example", organization="O"))
        .issuer_name(Name.build(common_name="Issuer"))
        .serial_number(77)
        .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
        .public_key(key.public_key)
        .ca(path_length=1)
        .key_usage(KeyUsage.for_ca())
        .san_domains("all.example")
        .skid_from_key()
        .akid(b"\x09" * 20)
        .aia_ca_issuers("http://aia/all.crt")
        .add_extension(OpaqueExtension(lookup("1.2.3.4.5"), b"mystery", True))
        .sign(key)
    )
    restored = certificate_from_dict(certificate_to_dict(cert))
    assert restored == cert
    assert restored.extensions.get(lookup("1.2.3.4.5")).critical


def test_malformed_dict_raises_encoding_error():
    with pytest.raises(EncodingError):
        certificate_from_dict({"version": 3})


def test_pem_body_is_wrapped_at_64_columns(chain):
    lines = to_pem(chain[0]).splitlines()
    body = lines[1:-1]
    assert all(len(line) <= 64 for line in body)
