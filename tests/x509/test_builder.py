"""CertificateBuilder: field validation and extension wiring."""

import pytest

from repro.errors import BuilderError
from repro.x509 import (
    CertificateBuilder,
    ExtendedKeyUsage,
    KeyUsage,
    Name,
    SimulatedKeyPair,
    Validity,
    utc,
)


def _base(key=None):
    key = key or SimulatedKeyPair()
    return (
        CertificateBuilder()
        .subject_name(Name.build(common_name="b.example"))
        .issuer_name(Name.build(common_name="Issuer"))
        .serial_number(1)
        .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
        .public_key(key.public_key)
    ), key


class TestValidation:
    def test_missing_subject_rejected(self):
        key = SimulatedKeyPair()
        builder = (
            CertificateBuilder()
            .issuer_name(Name.build(common_name="i"))
            .serial_number(1)
            .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
            .public_key(key.public_key)
        )
        with pytest.raises(BuilderError, match="subject"):
            builder.sign(key)

    def test_missing_everything_lists_all_fields(self):
        with pytest.raises(BuilderError) as excinfo:
            CertificateBuilder().sign(SimulatedKeyPair())
        message = str(excinfo.value)
        for fieldname in ("subject", "issuer", "serial_number", "validity",
                          "public_key"):
            assert fieldname in message

    def test_negative_serial_rejected(self):
        with pytest.raises(BuilderError):
            CertificateBuilder().serial_number(-1)

    def test_skid_from_key_requires_public_key(self):
        with pytest.raises(BuilderError):
            CertificateBuilder().skid_from_key()


class TestWiring:
    def test_signed_certificate_verifies(self):
        builder, key = _base()
        signer = SimulatedKeyPair()
        cert = builder.sign(signer)
        assert cert.verify_signature(signer.public_key)
        assert not cert.verify_signature(key.public_key)

    def test_skid_from_key_uses_subject_key(self):
        builder, key = _base()
        cert = builder.skid_from_key().sign(SimulatedKeyPair())
        assert cert.subject_key_id == key.public_key.key_id

    def test_akid_records_issuer_key(self):
        builder, _key = _base()
        signer = SimulatedKeyPair()
        cert = builder.akid(signer.public_key.key_id).sign(signer)
        assert cert.authority_key_id == signer.public_key.key_id

    def test_ca_and_end_entity_helpers(self):
        builder, _ = _base()
        ca_cert = builder.ca(path_length=3).sign(SimulatedKeyPair())
        assert ca_cert.is_ca and ca_cert.path_length_constraint == 3
        builder2, _ = _base()
        ee = builder2.end_entity().sign(SimulatedKeyPair())
        assert not ee.is_ca

    def test_san_and_eku_helpers(self):
        builder, _ = _base()
        cert = (
            builder.san_domains("a.example", "b.example")
            .extended_key_usage(ExtendedKeyUsage.server_auth())
            .key_usage(KeyUsage.for_tls_server())
            .sign(SimulatedKeyPair())
        )
        assert cert.matches_domain("b.example")
        assert cert.extensions.extended_key_usage.allows_server_auth()

    def test_aia_helper(self):
        builder, _ = _base()
        cert = builder.aia_ca_issuers("http://aia/x.crt").sign(SimulatedKeyPair())
        assert cert.aia_ca_issuer_uris == ("http://aia/x.crt",)

    def test_signature_algorithm_recorded(self):
        builder, _ = _base()
        cert = builder.sign(SimulatedKeyPair())
        assert cert.signature_algorithm.name == "simulated-blake2"

    def test_not_valid_before_after_pair(self):
        key = SimulatedKeyPair()
        cert = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="x"))
            .issuer_name(Name.build(common_name="x"))
            .serial_number(5)
            .not_valid_before(utc(2024, 1, 1))
            .not_valid_after(utc(2024, 7, 1))
            .public_key(key.public_key)
            .sign(key)
        )
        assert cert.validity.not_before == utc(2024, 1, 1)
        assert cert.validity.not_after == utc(2024, 7, 1)
