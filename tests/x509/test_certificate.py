"""Certificate identity, self-signedness, and domain matching."""

from repro.ca import next_serial
from repro.x509 import (
    CertificateBuilder,
    Name,
    SimulatedKeyPair,
    SubjectKeyIdentifier,
    Validity,
    utc,
)


def _mint(subject="example.com", issuer=None, key=None, signer=None,
          san=True, serial=None):
    key = key or SimulatedKeyPair()
    signer = signer or key
    builder = (
        CertificateBuilder()
        .subject_name(Name.build(common_name=subject))
        .issuer_name(Name.build(common_name=issuer or subject))
        .serial_number(serial if serial is not None else next_serial())
        .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
        .public_key(key.public_key)
        .end_entity()
    )
    if san:
        builder.san_domains(subject)
    return builder.sign(signer)


class TestIdentity:
    def test_fingerprint_stable(self):
        cert = _mint()
        assert cert.fingerprint == cert.fingerprint

    def test_identical_fields_same_fingerprint(self):
        key = SimulatedKeyPair(seed=b"cert-id")
        a = _mint(key=key, serial=7)
        b = _mint(key=key, serial=7)
        assert a == b
        assert hash(a) == hash(b)

    def test_serial_changes_fingerprint(self):
        key = SimulatedKeyPair(seed=b"cert-id2")
        assert _mint(key=key, serial=1) != _mint(key=key, serial=2)

    def test_certificates_usable_in_sets(self):
        cert = _mint()
        assert len({cert, cert}) == 1

    def test_not_equal_to_other_types(self):
        assert _mint() != object()


class TestSelfSigned:
    def test_self_signed_detected(self):
        assert _mint().is_self_signed

    def test_same_dn_wrong_key_is_not_self_signed(self):
        key, other = SimulatedKeyPair(), SimulatedKeyPair()
        cert = _mint(key=key, signer=other)
        assert cert.is_self_issued
        assert not cert.is_self_signed

    def test_different_issuer_not_self_signed(self, chain):
        assert not chain[0].is_self_signed

    def test_root_is_self_signed(self, hierarchy):
        assert hierarchy.root.certificate.is_self_signed


class TestStructuralAccessors:
    def test_skid_and_akid(self, chain, hierarchy):
        leaf = chain[0]
        assert leaf.subject_key_id is not None
        assert leaf.authority_key_id == (
            hierarchy.issuing_ca.keypair.public_key.key_id
        )

    def test_aia_uris(self, chain, hierarchy):
        assert chain[0].aia_ca_issuer_uris == (hierarchy.issuing_ca.aia_uri,)

    def test_is_ca(self, chain, hierarchy):
        assert not chain[0].is_ca
        assert chain[1].is_ca
        assert hierarchy.root.certificate.is_ca

    def test_missing_extensions_yield_none(self):
        key = SimulatedKeyPair()
        cert = (
            CertificateBuilder()
            .subject_name(Name.build(common_name="bare"))
            .issuer_name(Name.build(common_name="bare"))
            .serial_number(1)
            .validity(Validity(utc(2024, 1, 1), utc(2025, 1, 1)))
            .public_key(key.public_key)
            .sign(key)
        )
        assert cert.subject_key_id is None
        assert cert.authority_key_id is None
        assert cert.aia_ca_issuer_uris == ()
        assert not cert.is_ca


class TestDomainMatching:
    def test_san_match(self):
        assert _mint("match.example").matches_domain("match.example")

    def test_cn_fallback_when_no_san(self):
        cert = _mint("cn-only.example", san=False)
        assert cert.matches_domain("cn-only.example")

    def test_non_hostlike_cn_never_matches(self):
        cert = _mint("Plesk", san=False)
        assert not cert.matches_domain("Plesk")

    def test_hostlike_identity(self):
        assert _mint("a.example").has_hostlike_identity()
        assert not _mint("Plesk", san=False).has_hostlike_identity()

    def test_ip_cn_is_hostlike(self):
        assert _mint("192.0.2.7", san=False).has_hostlike_identity()


class TestSignatureVerification:
    def test_verify_with_issuer_key(self, chain, hierarchy):
        assert chain[0].verify_signature(hierarchy.issuing_ca.keypair.public_key)

    def test_verify_fails_with_wrong_key(self, chain, hierarchy):
        assert not chain[0].verify_signature(hierarchy.root.keypair.public_key)

    def test_validity_check(self, chain):
        assert chain[0].is_valid_at(utc(2024, 6, 1))
        assert not chain[0].is_valid_at(utc(2030, 1, 1))

    def test_summary_mentions_role(self, hierarchy):
        assert "[root]" in hierarchy.root.certificate.summary()
