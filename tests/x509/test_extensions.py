"""Extension models: SAN matching, name-form classification, constraints."""

import pytest

from repro.errors import ExtensionError
from repro.x509 import (
    AuthorityInformationAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    ExtendedKeyUsage,
    ExtensionOID,
    ExtensionSet,
    GeneralName,
    KeyUsage,
    OpaqueExtension,
    SubjectAlternativeName,
    SubjectKeyIdentifier,
    classify_name_form,
)
from repro.x509.oid import lookup


class TestGeneralNameMatching:
    def test_exact_dns_match(self):
        assert GeneralName("dns", "example.com").matches_domain("example.com")

    def test_case_insensitive(self):
        assert GeneralName("dns", "Example.COM").matches_domain("example.com")

    def test_trailing_dot_ignored(self):
        assert GeneralName("dns", "example.com.").matches_domain("example.com")

    def test_wildcard_matches_single_label(self):
        name = GeneralName("dns", "*.example.com")
        assert name.matches_domain("www.example.com")
        assert not name.matches_domain("a.b.example.com")

    def test_wildcard_does_not_match_apex(self):
        assert not GeneralName("dns", "*.example.com").matches_domain("example.com")

    def test_ip_matches_exactly(self):
        assert GeneralName("ip", "192.0.2.1").matches_domain("192.0.2.1")
        assert not GeneralName("ip", "192.0.2.1").matches_domain("192.0.2.2")

    def test_other_kind_never_matches(self):
        assert not GeneralName("other", "x").matches_domain("x")


class TestClassifyNameForm:
    @pytest.mark.parametrize("value", [
        "example.com", "www.example.co.uk", "*.example.com", "a-b.example.io",
    ])
    def test_domains(self, value):
        assert classify_name_form(value) == "domain"

    @pytest.mark.parametrize("value", ["192.0.2.1", "2001:db8::1"])
    def test_ips(self, value):
        assert classify_name_form(value) == "ip"

    @pytest.mark.parametrize("value", [
        "", "Plesk", "localhost", "SophosApplianceCertificate_4af1",
        "has space.com", "-bad.example.com", "toolong" + "x" * 64 + ".com",
        "1.2",  # numeric TLD
    ])
    def test_others(self, value):
        assert classify_name_form(value) == "other"


class TestSubjectAlternativeName:
    def test_for_domains_builder(self):
        san = SubjectAlternativeName.for_domains("a.example", "b.example")
        assert san.matches_domain("b.example")
        assert not san.matches_domain("c.example")


class TestBasicConstraints:
    def test_path_length_requires_ca(self):
        with pytest.raises(ExtensionError):
            BasicConstraints(ca=False, path_length=1)

    def test_negative_path_length_rejected(self):
        with pytest.raises(ExtensionError):
            BasicConstraints(ca=True, path_length=-1)

    def test_defaults_critical(self):
        assert BasicConstraints(ca=True).critical


class TestKeyUsage:
    def test_unknown_bits_rejected(self):
        with pytest.raises(ExtensionError):
            KeyUsage(frozenset({"teleportation"}))

    def test_ca_preset_signs_certs(self):
        assert KeyUsage.for_ca().key_cert_sign

    def test_server_preset_does_not_sign_certs(self):
        assert not KeyUsage.for_tls_server().key_cert_sign


class TestExtendedKeyUsage:
    def test_server_auth_preset(self):
        assert ExtendedKeyUsage.server_auth().allows_server_auth()

    def test_any_eku_allows_server_auth(self):
        from repro.x509 import EKUOID

        assert ExtendedKeyUsage((EKUOID.ANY,)).allows_server_auth()

    def test_code_signing_only_does_not(self):
        from repro.x509 import EKUOID

        assert not ExtendedKeyUsage((EKUOID.CODE_SIGNING,)).allows_server_auth()


class TestAIA:
    def test_ca_issuers_builder(self):
        aia = AuthorityInformationAccess.ca_issuers(
            "http://aia.example/ca.crt", ocsp_uri="http://ocsp.example"
        )
        assert aia.ca_issuer_uris == ("http://aia.example/ca.crt",)
        assert len(aia.descriptions) == 2


class TestExtensionSet:
    def test_duplicate_oid_rejected(self):
        skid = SubjectKeyIdentifier(b"\x01" * 20)
        with pytest.raises(ExtensionError):
            ExtensionSet((skid, skid))

    def test_typed_accessors(self):
        exts = ExtensionSet((
            SubjectKeyIdentifier(b"\x01" * 20),
            AuthorityKeyIdentifier(b"\x02" * 20),
            BasicConstraints(ca=True, path_length=2),
            KeyUsage.for_ca(),
        ))
        assert exts.subject_key_identifier.key_id == b"\x01" * 20
        assert exts.authority_key_identifier.key_id == b"\x02" * 20
        assert exts.basic_constraints.path_length == 2
        assert exts.key_usage.key_cert_sign
        assert exts.subject_alternative_name is None

    def test_contains_and_len(self):
        exts = ExtensionSet((BasicConstraints(ca=False),))
        assert ExtensionOID.BASIC_CONSTRAINTS in exts
        assert ExtensionOID.KEY_USAGE not in exts
        assert len(exts) == 1

    def test_opaque_extension_carries_bytes(self):
        opaque = OpaqueExtension(lookup("1.2.3.4"), b"blob")
        assert opaque.encode_value() == b"blob"
        exts = ExtensionSet((opaque,))
        assert exts.get(lookup("1.2.3.4")) is opaque

    def test_encode_is_deterministic(self):
        exts = ExtensionSet((BasicConstraints(ca=True), KeyUsage.for_ca()))
        assert exts.encode() == exts.encode()
