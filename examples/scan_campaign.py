#!/usr/bin/env python3
"""A miniature Tranco scan campaign (the paper's Section 3.1 / 4).

Generates a synthetic Web PKI world, installs it on the simulated
network, scans every domain from two vantage points under the 500 KB/s
cap, merges the vantages, runs the compliance analysis, and prints the
paper's server-side tables.

Run: ``python examples/scan_campaign.py [n_domains] [seed]``
"""

import sys

from repro.measurement import (
    Campaign,
    TableContext,
    render_table_3,
    render_table_5,
    render_table_7,
    render_table_8,
)
from repro.webpki import Ecosystem, EcosystemConfig


def main(n_domains: int = 3000, seed: int = 833) -> None:
    print(f"generating a {n_domains}-domain ecosystem (seed {seed})...")
    ecosystem = Ecosystem.generate(
        EcosystemConfig(n_domains=n_domains, seed=seed)
    )
    campaign = Campaign(ecosystem)

    print("scanning from two vantage points (rate-limited)...")
    collection = campaign.collect()
    for vantage, count in collection.reachable_counts.items():
        print(f"  {vantage}: {count:,} domains reachable")
    print(f"  union dataset: {collection.total_observations:,} chains, "
          f"{collection.unique_certificates:,} unique certificates")

    identical = campaign.compare_tls_versions(sample=min(n_domains, 500))
    print(f"  TLS1.2 == TLS1.3 chains: {identical:.1f}% (paper: 98.8%)")

    print("\nanalysing structural compliance...")
    report, _ = campaign.analyze(collection.observations)
    print(f"  non-compliant: {report.noncompliant:,} of {report.total:,} "
          f"({report.noncompliance_rate:.2f}%; paper: 2.9%)")

    ctx = TableContext.build(ecosystem)
    print("\n=== Table 3: leaf certificate deployment ===")
    print(render_table_3(ctx))
    print("\n=== Table 5: non-compliant issuance order ===")
    print(render_table_5(ctx))
    print("\n=== Table 7: completeness of certificate chain ===")
    print(render_table_7(ctx))
    print("\n=== Table 8: additional incomplete chains (store x AIA) ===")
    print(render_table_8(ctx))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
