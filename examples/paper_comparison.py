#!/usr/bin/env python3
"""Regenerate every paper artefact and print paper-vs-measured.

This is the EXPERIMENTS.md generator: it runs the full reproduction at
the requested scale and prints, for every table/figure/statistic in the
paper, the paper's value next to the measured one.

Run: ``python examples/paper_comparison.py [n_domains] [seed]``
"""

import sys

from repro.chainbuilder import (
    ALL_CLIENTS,
    DIFFERENTIAL_BROWSERS,
    DifferentialHarness,
    LIBRARIES,
    run_capability_matrix,
)
from repro.core import CompletenessClass, LeafPlacement, OrderDefect
from repro.measurement import (
    Campaign,
    TableContext,
    figure_case_outcomes,
    render_table_9,
    table_8,
    table_10,
    table_11,
)
from repro.webpki import Ecosystem, EcosystemConfig

PAPER_TOTAL = 906_336


def pct(count, total):
    return 100.0 * count / total if total else 0.0


def main(n_domains: int = 10_000, seed: int = 833) -> None:
    print(f"# Paper vs measured ({n_domains:,} domains, seed {seed})\n")
    ecosystem = Ecosystem.generate(
        EcosystemConfig(n_domains=n_domains, seed=seed)
    )
    ctx = TableContext.build(ecosystem)
    dataset = ctx.dataset
    total = dataset.total

    print(f"corpus: {total:,} chains (paper: {PAPER_TOTAL:,})\n")

    print("## Section 4 headline")
    print(f"non-compliant: paper 2.9% | measured "
          f"{dataset.noncompliance_rate:.2f}%\n")

    print("## Table 3 (leaf placement, % of corpus)")
    leaf = dataset.leaf_table()
    paper3 = {
        LeafPlacement.CORRECTLY_PLACED_MATCHED: 92.5,
        LeafPlacement.CORRECTLY_PLACED_MISMATCHED: 6.9,
        LeafPlacement.INCORRECTLY_PLACED_MATCHED: 0.0,
        LeafPlacement.INCORRECTLY_PLACED_MISMATCHED: 0.0,
        LeafPlacement.OTHER: 0.6,
    }
    for placement, paper_value in paper3.items():
        measured = leaf.get(placement, (0, 0.0))[1]
        print(f"  {placement.value:32} paper {paper_value:5.1f}% | "
              f"measured {measured:5.2f}%")

    print("\n## Table 5 (share of order-non-compliant chains)")
    order = dataset.order_table()
    paper5 = {
        OrderDefect.DUPLICATE_CERTIFICATES: 35.2,
        OrderDefect.IRRELEVANT_CERTIFICATES: 17.9,
        OrderDefect.MULTIPLE_PATHS: 1.5,
        OrderDefect.REVERSED_SEQUENCES: 50.5,
    }
    print(f"  order-non-compliant rate      paper 1.9% | measured "
          f"{pct(dataset.order_noncompliant, total):.2f}%")
    for defect, paper_value in paper5.items():
        measured = order.get(defect, (0, 0.0))[1]
        print(f"  {defect.value:30} paper {paper_value:5.1f}% | "
              f"measured {measured:5.1f}%")

    print("\n## Table 7 (completeness, % of corpus)")
    completeness = dataset.completeness_table()
    paper7 = {
        CompletenessClass.COMPLETE_WITH_ROOT: 8.7,
        CompletenessClass.COMPLETE_WITHOUT_ROOT: 89.9,
        CompletenessClass.INCOMPLETE: 1.3,
    }
    for category, paper_value in paper7.items():
        measured = completeness.get(category, (0, 0.0))[1]
        print(f"  {category.value:24} paper {paper_value:5.1f}% | "
              f"measured {measured:5.2f}%")
    incomplete = dataset.incomplete_total
    print(f"  missing exactly one      paper 72.2% | measured "
          f"{pct(dataset.missing_one_intermediate, incomplete):.1f}%")
    print(f"  AIA-recoverable          paper 94.5% | measured "
          f"{pct(dataset.aia_fixable_incomplete, incomplete):.1f}%")
    print(f"  AIA failure classes      paper 579 missing / 88 dead / 1 wrong"
          f" | measured {dict(dataset.incomplete_aia_outcomes)}")

    print("\n## Table 8 (additional incomplete chains; scaled to paper corpus)")
    t8 = table_8(ctx)
    for store, modes in t8.items():
        scaled_on = round(modes["aia_supported"] * PAPER_TOTAL / total)
        scaled_off = round(modes["aia_not_supported"] * PAPER_TOTAL / total)
        print(f"  {store:10} AIA on: {scaled_on:7,} (paper 4-66) | "
              f"AIA off: {scaled_off:9,} (paper ~225.4-225.6k)")

    print("\n## Table 9 (client capabilities)")
    print(render_table_9(run_capability_matrix(ALL_CLIENTS)))

    print("\n## Table 10 (servers of non-compliant chains; shares)")
    t10 = table_10(ctx)
    overview = t10["overview"]
    ov_total = sum(overview.values())
    paper10 = {"apache": 39.7, "nginx": 35.7, "azure": 5.5,
               "cloudflare": 3.3, "iis": 3.0, "aws-elb": 2.3}
    for server, paper_value in paper10.items():
        print(f"  {server:12} paper {paper_value:5.1f}% | measured "
              f"{pct(overview.get(server, 0), ov_total):5.1f}%")
    print(f"  azure duplicate-leaf: paper 0 | measured "
          f"{t10['duplicate_leaf'].get('azure', 0)}")

    print("\n## Table 11 (per-CA non-compliance rates)")
    t11 = table_11(ctx)
    paper11 = {"lets-encrypt": 1.2, "digicert": 7.9, "sectigo": 10.7,
               "zerossl": 2.5, "gogetssl": 16.7, "taiwan-ca": 50.4,
               "cyber-folks": 66.2, "trustico": 65.7}
    for ca, paper_value in paper11.items():
        row = t11[ca]
        print(f"  {ca:14} paper {paper_value:5.1f}% | measured "
              f"{row['noncompliant_rate']:5.1f}% "
              f"(n={row['total']:,})")

    print("\n## Section 3.1 methodology")
    campaign = Campaign(ecosystem)
    identical = campaign.compare_tls_versions(
        sample=min(n_domains, 2000)
    )
    print(f"  TLS1.2 == TLS1.3 chains: paper 98.8% | measured "
          f"{identical:.1f}%")

    print("\n## Section 5.2 differential testing")
    harness = DifferentialHarness(
        ecosystem.registry, aia_fetcher=ecosystem.aia_repo
    )
    diff = harness.run(ecosystem.observations(),
                       at_time=ecosystem.config.now,
                       observe_into_cache=True)
    print(f"  library building issues: paper 40.9% | measured "
          f"{diff.failure_rate(LIBRARIES):.1f}%")
    print(f"  browser building issues: paper 12.5% | measured "
          f"{diff.failure_rate(DIFFERENTIAL_BROWSERS):.1f}%")
    nc_domains = {r.domain for r in ctx.reports if not r.compliant}
    nc = [o for o in diff.outcomes if o.domain in nc_domains]
    print(f"  nc subset pass-all browsers: paper 61.1% | measured "
          f"{pct(sum(o.all_pass(DIFFERENTIAL_BROWSERS) for o in nc), len(nc)):.1f}%")
    print(f"  nc subset pass-all libraries: paper 47.4% | measured "
          f"{pct(sum(o.all_pass(LIBRARIES) for o in nc), len(nc)):.1f}%")
    print(f"  attribution: {dict(diff.attribution_counts())}")
    print("  (paper: I-1 51 chains, I-2 10, I-3 1, I-4 8,553)")

    print("\n## Figures 3 & 4 (case studies)")
    for case in ("fig3_long_list", "fig4_backtracking"):
        data = figure_case_outcomes(ecosystem, case)
        print(f"  {case}: {data['results']}")


if __name__ == "__main__":
    main(*[int(a) for a in sys.argv[1:3]])
