#!/usr/bin/env python3
"""An instrumented scan campaign: metrics, spans, sampling profiler.

Runs the same collect → merge → analyse pipeline as
``scan_campaign.py``, but with the :mod:`repro.obs` layer enabled:

* per-vantage scan counters and the wire-bytes histogram,
* the campaign phase timing tree (exportable as a Chrome trace),
* Tables 3/5/7 outcome counters straight from the metrics registry,
* a sampling-profiler phase attribution.

Run: ``python examples/instrumented_scan.py [n_domains] [seed]``
"""

import sys

from repro import obs
from repro.measurement import Campaign
from repro.webpki import Ecosystem, EcosystemConfig


def main(n_domains: int = 1000, seed: int = 833) -> None:
    with obs.instrumented() as (registry, tracer):
        obs.catalogue.preregister(registry)
        probe = obs.SamplingProbe(tracer, interval=0.005)

        print(f"generating a {n_domains}-domain ecosystem (seed {seed})...")
        ecosystem = Ecosystem.generate(
            EcosystemConfig(n_domains=n_domains, seed=seed)
        )
        campaign = Campaign(ecosystem)

        with probe:
            collection = campaign.collect()
            campaign.analyze(collection.observations)

        print("\n=== metrics ===")
        print(obs.render_metrics_table(registry.snapshot()))

        print("\n=== phase timing ===")
        for name, entry in sorted(tracer.aggregate().items()):
            if name.startswith("campaign."):
                print(f"  {name:<24} x{int(entry['count'])}  "
                      f"total {entry['total_s'] * 1e3:8.1f} ms  "
                      f"self {entry['self_s'] * 1e3:8.1f} ms")
        analyze_s = tracer.aggregate()["campaign.analyze"]["total_s"]
        chains = registry.total("campaign.chains_analyzed")
        if analyze_s > 0:
            print(f"  throughput: {chains / analyze_s:,.0f} chains/s")

        print("\n=== sampling profiler (span stacks by hits) ===")
        snapshot = probe.snapshot()
        for stack, hits in list(snapshot["stacks"].items())[:5]:
            print(f"  {hits:5d}  {stack}")
        if not snapshot["stacks"]:
            print("  (run finished between samples — try more domains)")

        # Chrome trace-event export: load this in chrome://tracing.
        trace_json = tracer.to_json(indent=None)
        print(f"\ntrace: {len(tracer.to_chrome_trace()):,} events, "
              f"{len(trace_json):,} bytes of Chrome trace JSON")


if __name__ == "__main__":
    obs.configure(level="INFO")  # structured key=value logs on stderr
    main(*(int(arg) for arg in sys.argv[1:]))
