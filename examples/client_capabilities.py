#!/usr/bin/env python3
"""Client chain-construction capability testing (the paper's Table 9).

Runs the nine Table 2 test cases against all eight client models and
prints the capability matrix, then demonstrates one priority test in
detail: which candidate issuer each client picks when four same-subject
intermediates differ only in validity.

Run: ``python examples/client_capabilities.py``
"""

from repro.chainbuilder import (
    ALL_CLIENTS,
    CapabilityEnvironment,
    ChainBuilder,
    run_capability_matrix,
)
from repro.chainbuilder.capabilities import NOW
from repro.measurement import render_table_9
from repro.x509 import Validity, utc


def main() -> None:
    print("running the 9 capability tests against 8 client models...\n")
    matrix = run_capability_matrix(ALL_CLIENTS)
    print(render_table_9(matrix))

    print("\n--- validity-priority test in detail (Table 2 #4) ---")
    env = CapabilityEnvironment.create(seed="example")
    candidates = {
        "expired": env.variant_issuer(
            validity=Validity(utc(2022, 1, 1), utc(2023, 1, 1))),
        "plain-1y": env.variant_issuer(
            validity=Validity(utc(2024, 1, 1), utc(2025, 1, 1))),
        "recent-1y": env.variant_issuer(
            validity=Validity(utc(2024, 4, 1), utc(2025, 4, 1))),
        "long-10y": env.variant_issuer(
            validity=Validity(utc(2024, 1, 1), utc(2034, 1, 1))),
    }
    presented = [env.leaf, *candidates.values(), env.i2.certificate,
                 env.root.certificate]
    by_fingerprint = {
        cert.fingerprint: label for label, cert in candidates.items()
    }
    print("presented candidates (same subject & key):",
          ", ".join(candidates))
    for client in ALL_CLIENTS:
        builder = env.builder(client)
        result = builder.build(presented, at_time=NOW)
        chosen = (
            by_fingerprint.get(result.steps[1].certificate.fingerprint, "?")
            if len(result.steps) > 1 else "none"
        )
        print(f"  {client.display_name:15} picks {chosen:10} "
              f"({matrix[client.name]['validity_priority']})")


if __name__ == "__main__":
    main()
