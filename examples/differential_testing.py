#!/usr/bin/env python3
"""Differential testing of client models over a measured corpus (§5.2).

Generates a synthetic corpus, runs all eight client models over every
observed chain, reports the library-vs-browser availability gap, the
cause attribution (I-1..I-4), and replays the paper's two case studies
(Figures 3 and 4).

Run: ``python examples/differential_testing.py [n_domains]``
"""

import sys

from repro.chainbuilder import (
    ALL_CLIENTS,
    DIFFERENTIAL_BROWSERS,
    DifferentialHarness,
    LIBRARIES,
)
from repro.measurement import figure_case_outcomes
from repro.webpki import Ecosystem, EcosystemConfig


def main(n_domains: int = 3000) -> None:
    print(f"generating a {n_domains}-domain corpus...")
    ecosystem = Ecosystem.generate(EcosystemConfig(n_domains=n_domains))
    harness = DifferentialHarness(
        ecosystem.registry, aia_fetcher=ecosystem.aia_repo
    )

    print("evaluating every chain in 8 client models...")
    report = harness.run(
        ecosystem.observations(), at_time=ecosystem.config.now,
        observe_into_cache=True,
    )
    print(f"\nchains with building issues:")
    print(f"  libraries: {report.failure_rate(LIBRARIES):5.1f}%  "
          f"(paper: 40.9%)")
    print(f"  browsers:  {report.failure_rate(DIFFERENTIAL_BROWSERS):5.1f}%  "
          f"(paper: 12.5%)")

    print(f"\nlibrary discrepancies: "
          f"{len(report.discrepancies(LIBRARIES)):,}")
    print("cause attribution (paper issues I-1..I-4):")
    for tag, count in sorted(report.attribution_counts().items()):
        print(f"  {tag:28} {count:,}")

    for case, figure in (("fig3_long_list", "Figure 3"),
                         ("fig4_backtracking", "Figure 4")):
        data = figure_case_outcomes(ecosystem, case)
        print(f"\n--- {figure}: {data['domain']} "
              f"(list of {data['list_length']}) ---")
        for client in ALL_CLIENTS:
            print(f"  {client.display_name:15} "
                  f"{data['results'][client.name]:>22}  "
                  f"path={data['structures'][client.name]}")


if __name__ == "__main__":
    main(*[int(a) for a in sys.argv[1:2]])
