#!/usr/bin/env python3
"""Replay of the 2020 AddTrust expiry outage (paper introduction).

On 2020-05-30 the AddTrust External CA Root expired.  Sites serving the
legacy cross-sign kept working in clients that could *backtrack* to the
modern USERTrust root, and broke in clients that committed to the first
(expired) path — "many clients fail[ed] to identify a valid certificate
path, leading to the unavailability of numerous websites".

This script builds the same topology, rolls the clock across the expiry
instant, and shows per-client availability before and after, plus the
cross-sign risk report the pool analysis produces ahead of time.

Run: ``python examples/addtrust_outage.py``
"""

from repro.ca import build_cross_signed_pair
from repro.chainbuilder import ALL_CLIENTS, ChainBuilder
from repro.core import CertificatePool
from repro.trust import RootStoreRegistry
from repro.x509 import Validity, utc

EXPIRY = utc(2020, 5, 30, 10, 48, 38)  # the real AddTrust expiry instant


def main() -> None:
    # USERTrust-style modern root + AddTrust-style legacy root.  The
    # legacy root cross-signs the *modern root itself* (the real
    # AddTrust topology), and the cross-sign expires with it.
    primary, legacy, _intermediate_cross = build_cross_signed_pair(
        "Sectigo-like",
        validity=Validity(utc(2010, 1, 1), utc(2038, 1, 1)),
        key_seed_prefix="addtrust",
    )
    cross = legacy.root.cross_sign(
        primary.root,
        validity=Validity(utc(2010, 1, 1), EXPIRY),
    )
    leaf = primary.issue_leaf(
        "shop.example", not_before=utc(2020, 1, 1), days=365,
    )
    # The deployed list carries the legacy compatibility path: the
    # cross-signed modern root plus the (expiring) legacy root.
    deployed = [
        leaf,
        primary.intermediates[0].certificate,
        cross,                       # modern root signed by AddTrust-like
        legacy.root.certificate,     # the expiring legacy root
    ]

    registry = RootStoreRegistry()
    registry.add_everywhere(primary.root.certificate)
    registry.add_everywhere(legacy.root.certificate)

    # --- the early warning a pool analysis would have raised ---------
    pool = CertificatePool()
    pool.add_chain(deployed)
    pool.add(primary.root.certificate)
    report = pool.outage_report(leaf, utc(2020, 5, 31))
    print("cross-sign risk report for the day after expiry:")
    print(f"  anchored paths: {report.total_paths}, still valid: "
          f"{report.valid_paths}, expired: {report.expired_paths}")
    print(f"  at risk (valid path exists but some clients will miss it): "
          f"{report.at_risk}\n")

    # --- per-client availability across the expiry -------------------
    moments = {
        "day before": utc(2020, 5, 29),
        "day after ": utc(2020, 5, 31),
    }
    print(f"{'client':16}" + "".join(f"{label:>14}" for label in moments))
    for client in ALL_CLIENTS:
        builder = ChainBuilder(
            client, registry.store(client.root_store)
        )
        row = []
        for moment in moments.values():
            verdict = builder.build_and_validate(
                deployed, domain="shop.example", at_time=moment
            )
            row.append("OK" if verdict.ok else f"{verdict.error[:12]}")
        print(f"{client.display_name:16}" + "".join(f"{r:>14}" for r in row))

    print("\nclients that rank candidate issuers by validity (or prefer")
    print("trusted anchors) swing onto the modern root and survive the")
    print("expiry; GnuTLS — no validity priority — keeps picking the dead")
    print("cross-sign, exactly as it did in May 2020.")


if __name__ == "__main__":
    main()
