#!/usr/bin/env python3
"""Chain deployment linter — the paper's §6 recommendations as a tool.

Given a PEM bundle (the certificate list a server would send), run the
full structural analysis, predict how each of the eight client models
will fare, and print actionable recommendations.  Without an argument
the script demonstrates itself on a deliberately broken bundle.

Run: ``python examples/diagnose_deployment.py [chain.pem domain]``
"""

import sys

from repro.ca import build_hierarchy, deliver, malform, TRUSTICO
from repro.chainbuilder import ALL_CLIENTS, DifferentialHarness
from repro.core import analyze_chain, OrderDefect
from repro.trust import RootStoreRegistry, StaticAIARepository
from repro.x509 import load_pem_bundle, to_pem_bundle, utc

NOW = utc(2024, 6, 1)


def diagnose(domain, chain, registry, aia) -> None:
    union = registry.union()
    report = analyze_chain(domain, chain, union, aia)

    print(f"=== structural analysis for {domain} "
          f"({len(chain)} certificates) ===")
    print(f"leaf placement : {report.leaf.placement.value}")
    print(f"issuance order : "
          f"{'compliant' if report.order.compliant else 'NON-COMPLIANT'}")
    print(f"completeness   : {report.completeness.category.value}")
    print(f"verdict        : "
          f"{'COMPLIANT' if report.compliant else 'NON-COMPLIANT'}")

    print("\n=== predicted client behaviour ===")
    harness = DifferentialHarness(registry, aia_fetcher=aia)
    outcome = harness.evaluate(domain, chain, at_time=NOW)
    first_failure = None
    for client in ALL_CLIENTS:
        result = outcome.result_of(client.name)
        mark = "ok " if result == "ok" else "FAIL"
        if result != "ok" and first_failure is None:
            first_failure = client
        print(f"  [{mark}] {client.display_name:15} {result}")

    if first_failure is not None:
        from repro.chainbuilder import ChainBuilder, explain_build

        print(f"\n=== why {first_failure.display_name} fails ===")
        builder = ChainBuilder(
            first_failure, registry.store(first_failure.root_store),
            aia_fetcher=aia,
        )
        print(explain_build(builder, chain, at_time=NOW).render())

    print("\n=== recommendations (paper §6) ===")
    order = report.order
    if order.has(OrderDefect.REVERSED_SEQUENCES):
        print("- reorder the list: leaf first, then each certificate's")
        print("  issuer directly after it (your ca-bundle is reversed)")
    if order.has(OrderDefect.DUPLICATE_CERTIFICATES):
        print("- remove duplicate certificates (check you did not paste")
        print("  the leaf into SSLCertificateChainFile as well)")
    if order.has(OrderDefect.IRRELEVANT_CERTIFICATES):
        print("- drop certificates unrelated to the leaf (old leaves,")
        print("  other sites' chains)")
    if not report.completeness.complete:
        print("- include every intermediate certificate; clients without")
        print("  AIA fetching cannot download missing issuers")
    if report.compliant:
        print("- nothing to do: the deployment is structurally compliant")


def demo() -> None:
    """Build a broken bundle and diagnose it."""
    hierarchy = build_hierarchy(
        "Diagnose CA", depth=2, key_seed_prefix="diagnose",
        aia_base="http://aia.diagnose.example",
    )
    leaf = hierarchy.issue_leaf("broken.example",
                                not_before=utc(2024, 1, 1), days=365)
    # Reversed bundle + duplicated leaf: two defects at once.
    deployed = malform.duplicate_leaf(
        deliver(hierarchy, leaf, TRUSTICO).naive_concatenation()
    )

    registry = RootStoreRegistry()
    registry.add_everywhere(hierarchy.root.certificate)
    aia = StaticAIARepository()
    for authority in hierarchy.authorities:
        aia.publish(authority.aia_uri, authority.certificate)

    print("(demo mode: diagnosing a deliberately broken bundle;")
    print(" pass `chain.pem domain` to lint your own)\n")
    diagnose("broken.example", deployed, registry, aia)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) >= 2:
        with open(argv[0]) as handle:
            chain = load_pem_bundle(handle.read())
        registry = RootStoreRegistry()
        for cert in chain:
            if cert.is_self_signed:
                registry.add_everywhere(cert)
        diagnose(argv[1], chain, registry, StaticAIARepository())
    else:
        demo()


if __name__ == "__main__":
    main()
