#!/usr/bin/env python3
"""Quickstart: mint a CA, break a chain, analyse it, build like a client.

Covers the library's core loop in ~60 lines:

1. create a CA hierarchy and issue a server certificate;
2. deploy the chain the *wrong* way (reversed ca-bundle merge);
3. run the paper's structural compliance analysis on it;
4. ask two client models — MbedTLS and Chrome — to build the path.

Run: ``python examples/quickstart.py``
"""

from repro.ca import build_hierarchy, deliver, GOGETSSL
from repro.chainbuilder import CHROME, ChainBuilder, MBEDTLS
from repro.core import analyze_chain
from repro.trust import RootStore, StaticAIARepository
from repro.x509 import utc

NOW = utc(2024, 6, 1)


def main() -> None:
    # 1. A root -> intermediate -> intermediate hierarchy and a leaf.
    hierarchy = build_hierarchy(
        "Quickstart CA", depth=2, key_seed_prefix="quickstart",
        aia_base="http://aia.quickstart.example",
    )
    leaf = hierarchy.issue_leaf(
        "shop.example", not_before=utc(2024, 1, 1), days=365,
    )

    # 2. The CA ships files the way GoGetSSL does: leaf.pem plus a
    #    ca-bundle in REVERSE order.  A hurried admin concatenates them.
    bundle = deliver(hierarchy, leaf, GOGETSSL)
    deployed = bundle.naive_concatenation()
    print("deployed list:")
    for index, cert in enumerate(deployed):
        print(f"  [{index}] {cert.summary()}")

    # 3. Structural compliance analysis (the paper's Section 3.1 rules).
    store = RootStore("demo", [hierarchy.root.certificate])
    aia = StaticAIARepository()
    for authority in hierarchy.authorities:
        aia.publish(authority.aia_uri, authority.certificate)
    report = analyze_chain("shop.example", deployed, store, aia)
    print(f"\ncompliant: {report.compliant}")
    print(f"defects:   {', '.join(report.defect_summary) or 'none'}")
    print(f"paths:     {report.order.path_structures}")

    # 4. Client-side construction: MbedTLS (forward-only scan) vs
    #    Chrome (full reordering).
    for policy in (MBEDTLS, CHROME):
        builder = ChainBuilder(policy, store, aia_fetcher=aia)
        verdict = builder.build_and_validate(
            deployed, domain="shop.example", at_time=NOW
        )
        status = "OK" if verdict.ok else f"FAIL ({verdict.error})"
        print(f"\n{policy.display_name:8} -> {status}")
        print(f"          constructed path: {verdict.build.structure}")


if __name__ == "__main__":
    main()
